package collect

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"

	"stellar/internal/obs"
)

// Benchmark telemetry: the schema-versioned BENCH_*.json documents every
// PR publishes (ROADMAP item 1's perf trajectory), plus the trace math
// that turns a merged cluster trace into the paper's §7 numbers.

// BenchSchema versions the BENCH_*.json documents.
const BenchSchema = "stellar-bench/v1"

// Quantiles summarizes a latency sample set (seconds).
type Quantiles struct {
	Count int     `json:"count"`
	Mean  float64 `json:"mean"`
	P50   float64 `json:"p50"`
	P90   float64 `json:"p90"`
	P99   float64 `json:"p99"`
	Max   float64 `json:"max"`
}

// Summarize computes Quantiles from raw samples (seconds).
func Summarize(samples []float64) Quantiles {
	q := Quantiles{Count: len(samples)}
	if len(samples) == 0 {
		return q
	}
	sorted := append([]float64(nil), samples...)
	sort.Float64s(sorted)
	var sum float64
	for _, v := range sorted {
		sum += v
	}
	q.Mean = sum / float64(len(sorted))
	pick := func(p float64) float64 {
		i := int(math.Ceil(p*float64(len(sorted)))) - 1
		if i < 0 {
			i = 0
		}
		return sorted[i]
	}
	q.P50, q.P90, q.P99 = pick(0.50), pick(0.90), pick(0.99)
	q.Max = sorted[len(sorted)-1]
	return q
}

// ClusterBench is the wall-clock result of one bench-cluster run against
// a live TCP quorum.
type ClusterBench struct {
	Nodes           int       `json:"nodes"`
	DurationSeconds float64   `json:"duration_seconds"`
	LedgersClosed   int       `json:"ledgers_closed"`
	TxSubmitted     int       `json:"tx_submitted"`
	TxApplied       int       `json:"tx_applied"`
	TxPerSecond     float64   `json:"tx_per_second"`
	CloseInterval   Quantiles `json:"close_interval_seconds"`
	// SubmitToApplied is measured from the merged cross-node trace: a
	// transaction's originating submit to the last applied span any node
	// recorded for it (the paper's end-to-end §7.3 story).
	SubmitToApplied Quantiles `json:"submit_to_applied_seconds"`
	// CrossNodeTraces counts causal trees whose spans landed on ≥ 2
	// processes — the propagation proof.
	CrossNodeTraces int `json:"cross_node_traces"`
	// Ingress outcome split (hardened submit pipeline): how many
	// submissions were admitted vs pushed back. Zero-valued on reports
	// from before the admission pipeline existed.
	TxAccepted    int `json:"tx_accepted,omitempty"`
	TxRejected429 int `json:"tx_rejected_429,omitempty"`
	TxRejected503 int `json:"tx_rejected_503,omitempty"`
	// Probe holds the ceiling-probe result when the run used -probe.
	Probe *ProbeBench `json:"probe,omitempty"`
}

// ProbeStep is one offered-load step of the ceiling probe.
type ProbeStep struct {
	OfferedTxPerSecond float64 `json:"offered_tx_per_second"`
	DurationSeconds    float64 `json:"duration_seconds"`
	Submitted          int     `json:"submitted"`
	Accepted           int     `json:"accepted"`
	Rejected429        int     `json:"rejected_429"`
	Rejected503        int     `json:"rejected_503"`
	Errors             int     `json:"errors,omitempty"`
}

// ProbeBench is the result of ramping offered load until the ingress
// pushes back: the sustained ceiling is the highest step rate fully
// admitted, and the backpressure contract (429 + Retry-After + min-fee)
// is itself part of the measured result.
type ProbeBench struct {
	Steps []ProbeStep `json:"steps"`
	// CeilingTxPerSecond is the highest offered rate the ingress admitted
	// without a single 429 (0 when even the first step saw pushback).
	CeilingTxPerSecond float64 `json:"ceiling_tx_per_second"`
	// BackpressureTxPerSecond is the offered rate at which 429s first
	// appeared (0 when the probe never reached backpressure).
	BackpressureTxPerSecond float64 `json:"backpressure_tx_per_second,omitempty"`
	// Totals across steps.
	Accepted    int `json:"accepted"`
	Rejected429 int `json:"rejected_429"`
	Rejected503 int `json:"rejected_503"`
	// RetryAfterValid records that every 429/503 carried a parseable
	// Retry-After of at least one second.
	RetryAfterValid bool `json:"retry_after_valid"`
	// MinFeeHint is the last surge-fee hint (stroops) a pool-pressure 429
	// body carried, empty if rejections never included one.
	MinFeeHint string `json:"min_fee_hint,omitempty"`
	// AcceptedThenLost counts transactions the ingress accepted (202)
	// that never applied by the end of the drain window. The smoke gate
	// requires zero: acceptance must be a promise, not a guess.
	AcceptedThenLost int `json:"accepted_then_lost"`
}

// MicroBench is one `go test -bench` result row.
type MicroBench struct {
	Name        string  `json:"name"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	MBPerSec    float64 `json:"mb_per_s,omitempty"`
	BytesPerOp  int64   `json:"bytes_per_op,omitempty"`
	AllocsPerOp int64   `json:"allocs_per_op,omitempty"`
	// Extra holds b.ReportMetric custom units (e.g. "ops/s",
	// "sched-speedup") keyed by unit string.
	Extra map[string]float64 `json:"extra,omitempty"`
}

// BenchReport is one BENCH_*.json document.
type BenchReport struct {
	Schema string `json:"schema"`
	Kind   string `json:"kind"` // "cluster" | "micro"
	// GeneratedUnix stamps the run (unix seconds).
	GeneratedUnix int64         `json:"generated_unix,omitempty"`
	Cluster       *ClusterBench `json:"cluster,omitempty"`
	Micro         []MicroBench  `json:"micro,omitempty"`
}

// WriteBench writes the report as indented JSON (committed artifacts diff
// cleanly).
func WriteBench(w io.Writer, r *BenchReport) error {
	r.Schema = BenchSchema
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// CheckBench validates a BENCH_*.json document: schema version, kind, and
// shape invariants. This is the gate CI runs on published artifacts.
func CheckBench(r io.Reader) (*BenchReport, error) {
	var br BenchReport
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&br); err != nil {
		return nil, fmt.Errorf("collect: bench json: %w", err)
	}
	if br.Schema != BenchSchema {
		return nil, fmt.Errorf("collect: bench schema %q, want %q", br.Schema, BenchSchema)
	}
	switch br.Kind {
	case "cluster":
		c := br.Cluster
		if c == nil {
			return nil, fmt.Errorf("collect: kind cluster without cluster payload")
		}
		if c.Nodes <= 0 || c.DurationSeconds <= 0 {
			return nil, fmt.Errorf("collect: cluster bench needs nodes > 0 and duration > 0")
		}
		if c.TxApplied > 0 && c.SubmitToApplied.Count == 0 {
			return nil, fmt.Errorf("collect: applied %d txs but no submit→applied samples", c.TxApplied)
		}
		if c.Probe != nil {
			if err := checkProbe(c.Probe); err != nil {
				return nil, err
			}
		}
	case "micro":
		if len(br.Micro) == 0 {
			return nil, fmt.Errorf("collect: kind micro without rows")
		}
		for _, m := range br.Micro {
			if m.Name == "" || m.NsPerOp <= 0 {
				return nil, fmt.Errorf("collect: micro row %+v needs name and ns/op", m)
			}
		}
	default:
		return nil, fmt.Errorf("collect: unknown bench kind %q", br.Kind)
	}
	return &br, nil
}

// checkProbe validates the ceiling-probe section's invariants: internal
// count consistency, the backpressure contract (429s must have carried
// valid Retry-After), and the zero accepted-then-lost guarantee.
func checkProbe(p *ProbeBench) error {
	if len(p.Steps) == 0 {
		return fmt.Errorf("collect: probe without steps")
	}
	var acc, r429, r503 int
	for i, s := range p.Steps {
		if s.OfferedTxPerSecond <= 0 || s.DurationSeconds <= 0 {
			return fmt.Errorf("collect: probe step %d needs offered rate and duration > 0", i)
		}
		if s.Accepted+s.Rejected429+s.Rejected503+s.Errors > s.Submitted {
			return fmt.Errorf("collect: probe step %d outcomes exceed submissions", i)
		}
		acc += s.Accepted
		r429 += s.Rejected429
		r503 += s.Rejected503
	}
	if acc != p.Accepted || r429 != p.Rejected429 || r503 != p.Rejected503 {
		return fmt.Errorf("collect: probe totals disagree with steps (accepted %d/%d, 429 %d/%d, 503 %d/%d)",
			p.Accepted, acc, p.Rejected429, r429, p.Rejected503, r503)
	}
	if p.Rejected429 > 0 && !p.RetryAfterValid {
		return fmt.Errorf("collect: probe saw 429s without valid Retry-After")
	}
	if p.AcceptedThenLost != 0 {
		return fmt.Errorf("collect: %d transactions accepted then lost", p.AcceptedThenLost)
	}
	if p.CeilingTxPerSecond < 0 {
		return fmt.Errorf("collect: negative probe ceiling")
	}
	return nil
}

// ParseGoBench parses `go test -bench` output into micro rows. Result
// lines look like
//
//	BenchmarkSCPRound-8   100   11438775 ns/op   57.2 MB/s   1024 B/op   12 allocs/op
//
// with every column after the iteration count an optional "value unit"
// pair; non-benchmark lines (PASS, ok, goos, logs) are skipped.
func ParseGoBench(r io.Reader) ([]MicroBench, error) {
	var rows []MicroBench
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		f := strings.Fields(sc.Text())
		if len(f) < 4 || !strings.HasPrefix(f[0], "Benchmark") {
			continue
		}
		iters, err := strconv.ParseInt(f[1], 10, 64)
		if err != nil {
			continue
		}
		// Strip the -GOMAXPROCS suffix go appends to the benchmark name.
		name := f[0]
		if i := strings.LastIndexByte(name, '-'); i > 0 {
			if _, err := strconv.Atoi(name[i+1:]); err == nil {
				name = name[:i]
			}
		}
		row := MicroBench{Name: name, Iterations: iters}
		for i := 2; i+1 < len(f); i += 2 {
			v, err := strconv.ParseFloat(f[i], 64)
			if err != nil {
				break
			}
			switch f[i+1] {
			case "ns/op":
				row.NsPerOp = v
			case "MB/s":
				row.MBPerSec = v
			case "B/op":
				row.BytesPerOp = int64(v)
			case "allocs/op":
				row.AllocsPerOp = int64(v)
			default:
				if row.Extra == nil {
					row.Extra = make(map[string]float64)
				}
				row.Extra[f[i+1]] = v
			}
		}
		if row.NsPerOp > 0 {
			rows = append(rows, row)
		}
	}
	return rows, sc.Err()
}

// TraceLatencies extracts per-transaction submit→applied latencies from
// scraped exports: for each causal tree rooted at a submitted tx, the
// originating root's start to the latest applied-phase end on any node.
// Returns the samples (seconds) and how many trees crossed processes.
func TraceLatencies(scrapes []*Scrape) (samples []float64, crossNode int) {
	spans, _ := align(scrapes)
	type agg struct {
		rootStart  int64
		hasRoot    bool
		appliedEnd int64
		hasApplied bool
		nodes      map[int]bool
	}
	trees := make(map[uint64]*agg)
	tree := func(id uint64) *agg {
		a := trees[id]
		if a == nil {
			a = &agg{nodes: make(map[int]bool)}
			trees[id] = a
		}
		return a
	}
	for i := range spans {
		sp := &spans[i]
		a := tree(sp.Trace)
		a.nodes[sp.node] = true
		switch sp.Name {
		case obs.SpanTx:
			// The originating root is the tx span with no remote parent.
			if sp.RemoteParent == 0 && (!a.hasRoot || sp.absStart < a.rootStart) {
				a.rootStart, a.hasRoot = sp.absStart, true
			}
		case obs.SpanTxApplied:
			if !sp.Open && (!a.hasApplied || sp.absEnd > a.appliedEnd) {
				a.appliedEnd, a.hasApplied = sp.absEnd, true
			}
		}
	}
	for _, a := range trees {
		if len(a.nodes) >= 2 {
			crossNode++
		}
		if a.hasRoot && a.hasApplied && a.appliedEnd >= a.rootStart {
			samples = append(samples, float64(a.appliedEnd-a.rootStart)/1e9)
		}
	}
	sort.Float64s(samples)
	return samples, crossNode
}
