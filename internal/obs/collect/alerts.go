package collect

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"

	"stellar/internal/obs/slo"
)

// The fleet alert view: every node already judges its own telemetry
// through the SLO engine (internal/obs/slo) and serves the verdict at
// GET /debug/alerts; the collector's job is only to gather and render,
// so a single `stellar-obs alerts` answers "is anything degraded?"
// across the whole quorum.

// FetchAlerts retrieves one node's /debug/alerts report.
func (c *Client) FetchAlerts(t Target) (*slo.Report, error) {
	resp, err := c.get(t.URL + "/debug/alerts")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	var rep slo.Report
	if err := json.NewDecoder(resp.Body).Decode(&rep); err != nil {
		return nil, err
	}
	if rep.Schema != slo.ReportSchema {
		return nil, fmt.Errorf("collect: %s/debug/alerts: schema %q, want %q",
			t.URL, rep.Schema, slo.ReportSchema)
	}
	return &rep, nil
}

// AlertRow is one node's entry in the fleet alert sweep.
type AlertRow struct {
	Name   string
	URL    string
	Err    error
	Report *slo.Report
}

// FetchAlertRows sweeps /debug/alerts across the targets. Per-node
// failures land in the row rather than aborting — the alert view must
// survive exactly the outages it exists to report.
func FetchAlertRows(c *Client, targets []Target) []AlertRow {
	rows := make([]AlertRow, len(targets))
	for i, t := range targets {
		rows[i] = AlertRow{Name: t.Name, URL: t.URL}
		rep, err := c.FetchAlerts(t)
		if err != nil {
			rows[i].Err = err
			continue
		}
		rows[i].Report = rep
		if rows[i].Name == "" && rep.Node != "" {
			rows[i].Name = rep.Node
		}
	}
	return rows
}

// AlertsTable renders the sweep as a text table — one line per node plus
// one indented line per non-inactive alert — and returns how many alerts
// are firing fleet-wide. A DOWN node counts as firing: unreachable is the
// degradation the sweep is for.
func AlertsTable(rows []AlertRow) (string, int) {
	var b strings.Builder
	firing := 0
	fmt.Fprintf(&b, "%-16s %-10s %s\n", "NODE", "STATUS", "ALERTS")
	for _, r := range rows {
		name := r.Name
		if name == "" {
			name = r.URL
		}
		switch {
		case r.Err != nil:
			firing++
			fmt.Fprintf(&b, "%-16s %-10s %v\n", name, "DOWN", r.Err)
			continue
		case !r.Report.Enabled:
			fmt.Fprintf(&b, "%-16s %-10s alerting disabled\n", name, "off")
			continue
		case r.Report.Firing > 0:
			firing += r.Report.Firing
			fmt.Fprintf(&b, "%-16s %-10s %d firing, %d pending\n",
				name, "FIRING", r.Report.Firing, r.Report.Pending)
		case r.Report.Pending > 0:
			fmt.Fprintf(&b, "%-16s %-10s %d pending\n", name, "pending", r.Report.Pending)
		default:
			fmt.Fprintf(&b, "%-16s %-10s ok\n", name, "ok")
		}
		for _, a := range r.Report.Alerts {
			if a.State == slo.StateInactive.String() && a.Fired == 0 {
				continue
			}
			detail := a.Detail
			if detail != "" {
				detail = " — " + detail
			}
			fmt.Fprintf(&b, "  %-14s %-10s %-8s fired=%d%s\n",
				a.Name, a.State, a.Severity, a.Fired, detail)
		}
	}
	return b.String(), firing
}

// FiringAlerts lists the distinct alert names firing anywhere in the
// sweep, sorted.
func FiringAlerts(rows []AlertRow) []string {
	set := make(map[string]bool)
	for _, r := range rows {
		if r.Report == nil {
			continue
		}
		for _, a := range r.Report.Alerts {
			if a.State == slo.StateFiring.String() {
				set[a.Name] = true
			}
		}
	}
	names := make([]string, 0, len(set))
	for n := range set {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
