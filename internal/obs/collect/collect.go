// Package collect is the fleet-side half of the observability layer: it
// scrapes every node's /metrics, /debug/quorum, and /debug/trace/export
// endpoints, estimates per-node clock offsets from the scrape exchange
// itself (NTP-style midpoint correction), and merges the per-process span
// stores into one skew-aligned, Perfetto-loadable cluster trace. The
// stellar-obs CLI is a thin front end over this package; the bench runner
// (make bench-cluster) uses the same scrapes to compute the paper's §7
// cross-node numbers (close cadence, submit→applied latency, tx/s).
package collect

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"time"

	"stellar/internal/obs"
	"stellar/internal/obs/slo"
)

// Target is one node's scrape endpoint.
type Target struct {
	// Name labels the node in tables and merged traces; defaults to the
	// export's self-reported node id when empty.
	Name string
	// URL is the node's HTTP base, e.g. "http://127.0.0.1:28000".
	URL string
}

// ParseTargets splits a comma-separated list of URLs, optionally prefixed
// "name=": "node-0=http://127.0.0.1:28000,http://127.0.0.1:28001".
func ParseTargets(s string) []Target {
	var out []Target
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		t := Target{URL: part}
		if name, url, ok := strings.Cut(part, "="); ok && !strings.Contains(name, "/") {
			t.Name, t.URL = name, url
		}
		t.URL = strings.TrimSuffix(t.URL, "/")
		out = append(out, t)
	}
	return out
}

// Metrics is a parsed Prometheus text scrape: full series key (name plus
// label block, exactly as exposed) → value.
type Metrics map[string]float64

// Value reads one exact series ("transport_peers", or a labeled key like
// `foo{peer="G..."}`).
func (m Metrics) Value(series string) (float64, bool) {
	v, ok := m[series]
	return v, ok
}

// Sum adds every series of one family (all label combinations of name).
func (m Metrics) Sum(name string) float64 {
	var sum float64
	for k, v := range m {
		if k == name || (strings.HasPrefix(k, name) && len(k) > len(name) && k[len(name)] == '{') {
			sum += v
		}
	}
	return sum
}

// ParseMetrics parses Prometheus text exposition (the subset our registry
// emits: HELP/TYPE comments and `series value` lines).
func ParseMetrics(r *bufio.Scanner) (Metrics, error) {
	m := make(Metrics)
	for r.Scan() {
		line := strings.TrimSpace(r.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		// The value is the text after the last space outside braces; our
		// label values never contain spaces, so LastIndexByte suffices.
		i := strings.LastIndexByte(line, ' ')
		if i < 0 {
			continue
		}
		v, err := strconv.ParseFloat(line[i+1:], 64)
		if err != nil {
			continue
		}
		m[line[:i]] = v
	}
	return m, r.Err()
}

// LedgerInfo is the subset of GET /ledgers/latest the collector reads.
type LedgerInfo struct {
	Sequence  uint32 `json:"sequence"`
	Hash      string `json:"hash"`
	CloseTime int64  `json:"close_time"`
}

// Scrape is everything collected from one node in one pass.
type Scrape struct {
	Target  Target
	Export  *obs.Export
	Metrics Metrics
	Quorum  json.RawMessage
	Ledger  *LedgerInfo
	Alerts  *slo.Report

	// OffsetNanos estimates the node's wall clock minus the collector's,
	// from the trace-export exchange: the server stamps NowUnixNanos while
	// handling the request, which in the collector's frame happened at
	// roughly t0+RTT/2, so offset = serverNow − (t0 + RTT/2). RTTNanos is
	// that exchange's full round trip.
	OffsetNanos int64
	RTTNanos    int64

	FetchedAt time.Time
	Err       error
}

// Name returns the node's display name: the target label, else the
// export's self-reported id, else the URL.
func (s *Scrape) Name() string {
	if s.Target.Name != "" {
		return s.Target.Name
	}
	if s.Export != nil && s.Export.Node != "" {
		return s.Export.Node
	}
	return s.Target.URL
}

// Client scrapes targets over HTTP.
type Client struct {
	HTTP *http.Client
}

// NewClient builds a collector client with a bounded per-request timeout.
func NewClient(timeout time.Duration) *Client {
	if timeout <= 0 {
		timeout = 5 * time.Second
	}
	return &Client{HTTP: &http.Client{Timeout: timeout}}
}

func (c *Client) get(url string) (*http.Response, error) {
	resp, err := c.HTTP.Get(url)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		resp.Body.Close()
		return nil, fmt.Errorf("collect: GET %s: status %d", url, resp.StatusCode)
	}
	return resp, nil
}

// FetchExport retrieves one node's span store and estimates its clock
// offset from the exchange.
func (c *Client) FetchExport(t Target) (*obs.Export, int64, int64, error) {
	t0 := time.Now()
	resp, err := c.get(t.URL + "/debug/trace/export")
	if err != nil {
		return nil, 0, 0, err
	}
	defer resp.Body.Close()
	exp, err := obs.DecodeExport(resp.Body)
	rtt := time.Since(t0).Nanoseconds()
	if err != nil {
		return nil, 0, rtt, err
	}
	offset := exp.NowUnixNanos - (t0.UnixNano() + rtt/2)
	return exp, offset, rtt, nil
}

// FetchMetrics retrieves and parses one node's /metrics.
func (c *Client) FetchMetrics(t Target) (Metrics, error) {
	resp, err := c.get(t.URL + "/metrics")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	return ParseMetrics(bufio.NewScanner(resp.Body))
}

// FetchLedger retrieves one node's latest-ledger summary.
func (c *Client) FetchLedger(t Target) (*LedgerInfo, error) {
	resp, err := c.get(t.URL + "/ledgers/latest")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	var li LedgerInfo
	if err := json.NewDecoder(resp.Body).Decode(&li); err != nil {
		return nil, err
	}
	return &li, nil
}

// FetchQuorum retrieves one node's /debug/quorum report verbatim.
func (c *Client) FetchQuorum(t Target) (json.RawMessage, error) {
	resp, err := c.get(t.URL + "/debug/quorum")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	var raw json.RawMessage
	if err := json.NewDecoder(resp.Body).Decode(&raw); err != nil {
		return nil, err
	}
	return raw, nil
}

// ScrapeAll collects every surface from every target. Per-node failures
// land in Scrape.Err rather than aborting the pass — a fleet view must
// survive one node being down.
func (c *Client) ScrapeAll(targets []Target) []*Scrape {
	out := make([]*Scrape, len(targets))
	for i, t := range targets {
		s := &Scrape{Target: t, FetchedAt: time.Now()}
		out[i] = s
		exp, offset, rtt, err := c.FetchExport(t)
		if err != nil {
			s.Err = err
			continue
		}
		s.Export, s.OffsetNanos, s.RTTNanos = exp, offset, rtt
		if s.Metrics, err = c.FetchMetrics(t); err != nil {
			s.Err = err
			continue
		}
		if s.Ledger, err = c.FetchLedger(t); err != nil {
			s.Err = err
			continue
		}
		s.Quorum, _ = c.FetchQuorum(t) // optional; table shows "?" when absent
		s.Alerts, _ = c.FetchAlerts(t) // optional; table shows "?" when absent
	}
	return out
}
