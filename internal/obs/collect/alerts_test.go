package collect

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"stellar/internal/obs/slo"
)

// alertsServer serves a canned /debug/alerts document.
func alertsServer(t *testing.T, body string) *httptest.Server {
	t.Helper()
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/debug/alerts" {
			http.NotFound(w, r)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprint(w, body)
	}))
	t.Cleanup(srv.Close)
	return srv
}

const firingReport = `{
  "schema": "stellar-alerts/v1", "node": "node-0", "enabled": true,
  "now_ns": 12000000000, "firing": 1, "pending": 1,
  "alerts": [
    {"name": "close_stall", "severity": "critical", "state": "firing",
     "since_ns": 9000000000, "value": 21, "threshold": 20,
     "detail": "no ledger closed in 21s", "fired_count": 1},
    {"name": "mempool_saturated", "severity": "warning", "state": "pending",
     "since_ns": 11000000000, "value": 0.95, "threshold": 0.9, "fired_count": 0},
    {"name": "peer_loss", "severity": "warning", "state": "inactive",
     "since_ns": 0, "fired_count": 0}
  ]
}`

const healthyReport = `{
  "schema": "stellar-alerts/v1", "node": "node-1", "enabled": true,
  "now_ns": 12000000000, "firing": 0, "pending": 0,
  "alerts": [
    {"name": "close_stall", "severity": "critical", "state": "inactive",
     "since_ns": 0, "fired_count": 0}
  ]
}`

func TestFetchAlerts(t *testing.T) {
	srv := alertsServer(t, firingReport)
	c := NewClient(time.Second)
	rep, err := c.FetchAlerts(Target{URL: srv.URL})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Enabled || rep.Firing != 1 || rep.Node != "node-0" {
		t.Fatalf("report %+v", rep)
	}
	if len(rep.Alerts) != 3 || rep.Alerts[0].Name != "close_stall" {
		t.Fatalf("alerts %+v", rep.Alerts)
	}
}

func TestFetchAlertsBadSchema(t *testing.T) {
	srv := alertsServer(t, `{"schema": "bogus/v9", "enabled": true, "alerts": []}`)
	c := NewClient(time.Second)
	if _, err := c.FetchAlerts(Target{URL: srv.URL}); err == nil {
		t.Fatal("bad schema accepted")
	}
}

func TestAlertsTableAndFiring(t *testing.T) {
	bad := alertsServer(t, firingReport)
	good := alertsServer(t, healthyReport)
	off := alertsServer(t, `{"schema": "stellar-alerts/v1", "node": "node-2", "enabled": false, "alerts": []}`)
	c := NewClient(time.Second)
	targets := []Target{
		{Name: "node-0", URL: bad.URL},
		{URL: good.URL}, // name comes from the report
		{Name: "node-2", URL: off.URL},
		{Name: "node-3", URL: "http://127.0.0.1:1"}, // unreachable
	}
	rows := FetchAlertRows(c, targets)
	if rows[1].Name != "node-1" {
		t.Errorf("row 1 did not take the report's node name: %+v", rows[1])
	}

	table, firing := AlertsTable(rows)
	// 1 firing on node-0 plus the DOWN node counted as a degradation.
	if firing != 2 {
		t.Fatalf("firing = %d, want 2\n%s", firing, table)
	}
	for _, want := range []string{
		"FIRING", "close_stall", "no ledger closed in 21s",
		"mempool_saturated", // pending rows are listed
		"alerting disabled", "DOWN",
		"node-1           ok",
	} {
		if !strings.Contains(table, want) {
			t.Errorf("table missing %q:\n%s", want, table)
		}
	}
	if strings.Contains(table, "peer_loss") {
		t.Errorf("inactive never-fired alert listed:\n%s", table)
	}

	if names := FiringAlerts(rows); len(names) != 1 || names[0] != "close_stall" {
		t.Errorf("FiringAlerts = %v", names)
	}
}

func TestAlertsSummaryCell(t *testing.T) {
	if s := alertsSummary(nil); s != "?" {
		t.Errorf("nil report cell = %q", s)
	}
	if s := alertsSummary(slo.DisabledReport("n")); s != "off" {
		t.Errorf("disabled cell = %q", s)
	}
	if s := alertsSummary(&slo.Report{Enabled: true}); s != "ok" {
		t.Errorf("healthy cell = %q", s)
	}
	rep := &slo.Report{Enabled: true, Firing: 2, Alerts: []slo.Alert{
		{Name: "close_stall", State: "firing"},
		{Name: "peer_loss", State: "inactive"},
		{Name: "quorum_unavailable", State: "firing"},
	}}
	if s := alertsSummary(rep); s != "close_stall,quorum_unavailable" {
		t.Errorf("firing cell = %q", s)
	}
}
