package collect

import (
	"bufio"
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"

	"stellar/internal/obs"
)

func TestParseTargets(t *testing.T) {
	ts := ParseTargets("http://a:1, node-b=http://b:2 ,,")
	if len(ts) != 2 {
		t.Fatalf("parsed %d targets, want 2", len(ts))
	}
	if ts[0].URL != "http://a:1" {
		t.Errorf("target 0: %+v", ts[0])
	}
	if ts[1].Name != "node-b" || ts[1].URL != "http://b:2" {
		t.Errorf("target 1: %+v", ts[1])
	}
}

func TestParseMetrics(t *testing.T) {
	text := `# HELP herder_ledgers_closed_total ledgers
# TYPE herder_ledgers_closed_total counter
herder_ledgers_closed_total 42
transport_frames_in_total{peer="GA..X"} 10
transport_frames_in_total{peer="GB..Y"} 5
herder_close_interval_seconds_sum 12.5
`
	m, err := ParseMetrics(bufio.NewScanner(strings.NewReader(text)))
	if err != nil {
		t.Fatal(err)
	}
	if v, ok := m.Value("herder_ledgers_closed_total"); !ok || v != 42 {
		t.Errorf("Value = %v,%v, want 42", v, ok)
	}
	if v := m.Sum("transport_frames_in_total"); v != 15 {
		t.Errorf("Sum over labels = %v, want 15", v)
	}
	if v := m.Sum("herder_close_interval_seconds_sum"); v != 12.5 {
		t.Errorf("exact sum = %v, want 12.5", v)
	}
	if v := m.Sum("herder_close_interval_seconds"); v != 0 {
		t.Errorf("family sum must not swallow the _sum-suffixed series: got %v", v)
	}
}

// syntheticScrapes builds two nodes whose clocks disagree by a known
// offset: node B's span continues node A's root across the process
// boundary.
func syntheticScrapes() []*Scrape {
	const (
		epochA = int64(1_000_000_000_000) // node A clock anchor (unix nanos)
		skew   = int64(250_000_000)       // node B runs 250ms fast
	)
	rootID := obs.IDBaseFromString("node-a") | 1
	remoteID := obs.IDBaseFromString("node-b") | 1
	appliedID := obs.IDBaseFromString("node-b") | 2
	a := &obs.Export{
		Schema: obs.ExportSchema, Node: "node-a",
		EpochUnixNanos: epochA,
		Procs:          []string{"node-a"},
		Spans: []obs.ExportSpan{{
			ID: rootID, Trace: rootID, Track: "txs",
			Name: obs.SpanTx, StartNanos: 10_000_000, EndNanos: 700_000_000,
		}},
	}
	b := &obs.Export{
		Schema: obs.ExportSchema, Node: "node-b",
		EpochUnixNanos: epochA + skew, // same real instant, skewed clock
		Procs:          []string{"node-b"},
		Spans: []obs.ExportSpan{
			{
				ID: remoteID, Trace: rootID, RemoteParent: rootID, Origin: "node-a",
				Track: "txs", Name: obs.SpanTx,
				StartNanos: 60_000_000, EndNanos: 600_000_000,
			},
			{
				ID: appliedID, Parent: remoteID, Trace: rootID,
				Track: "txs", Name: obs.SpanTxApplied,
				StartNanos: 500_000_000, EndNanos: 600_000_000,
			},
		},
	}
	now := time.Now()
	return []*Scrape{
		{Target: Target{Name: "node-a", URL: "test://a"}, Export: a, FetchedAt: now},
		{Target: Target{Name: "node-b", URL: "test://b"}, Export: b, OffsetNanos: skew, FetchedAt: now},
	}
}

func TestMergeAlignsAndLinks(t *testing.T) {
	scrapes := syntheticScrapes()
	var buf bytes.Buffer
	stats, err := Merge(scrapes, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if !stats.Lossless() || stats.SpansIn != 3 {
		t.Fatalf("stats %+v: want lossless with 3 spans", stats)
	}
	if stats.Nodes != 2 || stats.CrossLinks != 1 || stats.Unresolved != 0 {
		t.Fatalf("stats %+v: want 2 nodes, 1 cross link, 0 unresolved", stats)
	}
	if stats.MaxOffsetNanos != 250_000_000 {
		t.Fatalf("max offset %d, want the injected 250ms skew", stats.MaxOffsetNanos)
	}

	var out struct {
		TraceEvents []struct {
			Name string            `json:"name"`
			Ph   string            `json:"ph"`
			Ts   float64           `json:"ts"`
			Pid  int               `json:"pid"`
			Args map[string]string `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatalf("merged trace not JSON: %v", err)
	}
	// Offset correction puts node B's remote span 50ms after node A's
	// root (60ms on a clock 250ms fast + its later epoch ... net +50ms in
	// the collector frame), not 300ms.
	var rootTs, remoteTs float64 = -1, -1
	pids := map[int]bool{}
	flows := 0
	for _, ev := range out.TraceEvents {
		switch ev.Ph {
		case "X":
			pids[ev.Pid] = true
			if ev.Name == obs.SpanTx && ev.Args["remote_parent"] == "" {
				rootTs = ev.Ts
			}
			if ev.Args["remote_parent"] != "" {
				remoteTs = ev.Ts
				if ev.Args["origin"] != "node-a" {
					t.Errorf("remote span origin %q", ev.Args["origin"])
				}
			}
		case "s":
			flows++
		}
	}
	if len(pids) != 2 {
		t.Errorf("merged trace has %d pids, want 2", len(pids))
	}
	if flows == 0 {
		t.Error("no flow arrows in merged trace")
	}
	// ts is microseconds rebased to the earliest span (the root at 0).
	if rootTs != 0 {
		t.Errorf("root ts %v, want 0 after rebase", rootTs)
	}
	if remoteTs < 299_999 || remoteTs > 300_001 {
		// Without correction the remote span would land at 60ms - 10ms +
		// 250ms skew = 300ms; WITH correction it lands at 50ms. The skew
		// is subtracted, so we want 50ms here.
		if remoteTs < 49_999 || remoteTs > 50_001 {
			t.Errorf("remote span ts %vµs, want ~50000µs (skew-corrected)", remoteTs)
		}
	} else {
		t.Errorf("remote span ts %vµs sits at the UNcorrected position", remoteTs)
	}
}

func TestMergeUnresolvedRemoteParent(t *testing.T) {
	scrapes := syntheticScrapes()[1:] // drop node A: the remote parent vanishes
	var buf bytes.Buffer
	stats, err := Merge(scrapes, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Unresolved != 1 || stats.CrossLinks != 0 {
		t.Fatalf("stats %+v: want 1 unresolved, 0 cross links", stats)
	}
}

func TestTraceLatencies(t *testing.T) {
	samples, crossNode := TraceLatencies(syntheticScrapes())
	if crossNode != 1 {
		t.Fatalf("crossNode = %d, want 1", crossNode)
	}
	if len(samples) != 1 {
		t.Fatalf("samples = %v, want one", samples)
	}
	// On the aligned timeline both epochs denote the same true instant
	// (node B's wall anchor reads 250ms fast, and the offset correction
	// cancels exactly that). Root starts at +10ms, applied ends at
	// +600ms: latency 590ms.
	if samples[0] < 0.589 || samples[0] > 0.591 {
		t.Errorf("latency %v, want ~0.590s", samples[0])
	}
}

func TestSummarize(t *testing.T) {
	q := Summarize([]float64{0.4, 0.1, 0.3, 0.2})
	if q.Count != 4 || q.Max != 0.4 {
		t.Fatalf("%+v", q)
	}
	if q.P50 != 0.2 || q.P99 != 0.4 {
		t.Errorf("p50 %v p99 %v", q.P50, q.P99)
	}
	if z := Summarize(nil); z.Count != 0 || z.Max != 0 {
		t.Errorf("empty summarize %+v", z)
	}
}

func TestCheckBench(t *testing.T) {
	good := &BenchReport{
		Kind: "cluster",
		Cluster: &ClusterBench{
			Nodes: 3, DurationSeconds: 20, TxApplied: 10,
			SubmitToApplied: Quantiles{Count: 10},
		},
	}
	var buf bytes.Buffer
	if err := WriteBench(&buf, good); err != nil {
		t.Fatal(err)
	}
	if _, err := CheckBench(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatalf("valid report rejected: %v", err)
	}

	bad := []string{
		`{"schema":"stellar-bench/v0","kind":"cluster"}`,                                   // wrong schema
		`{"schema":"stellar-bench/v1","kind":"cluster"}`,                                   // no payload
		`{"schema":"stellar-bench/v1","kind":"micro"}`,                                     // no rows
		`{"schema":"stellar-bench/v1","kind":"weird"}`,                                     // unknown kind
		`{"schema":"stellar-bench/v1","kind":"micro","micro":[{"name":"","ns_per_op":1}]}`, // unnamed row
		`{"schema":"stellar-bench/v1","kind":"cluster","cluster":{"nodes":3,"duration_seconds":1,"tx_applied":5,"submit_to_applied_seconds":{"count":0}},"extra":1}`, // unknown field
	}
	for _, doc := range bad {
		if _, err := CheckBench(strings.NewReader(doc)); err == nil {
			t.Errorf("accepted invalid doc: %s", doc)
		}
	}
}

func TestCheckBenchProbe(t *testing.T) {
	mk := func(mut func(*ProbeBench)) *BenchReport {
		p := &ProbeBench{
			Steps: []ProbeStep{
				{OfferedTxPerSecond: 4, DurationSeconds: 5, Submitted: 20, Accepted: 20},
				{OfferedTxPerSecond: 8, DurationSeconds: 5, Submitted: 40, Accepted: 30, Rejected429: 10},
			},
			CeilingTxPerSecond:      4,
			BackpressureTxPerSecond: 8,
			Accepted:                50,
			Rejected429:             10,
			RetryAfterValid:         true,
		}
		if mut != nil {
			mut(p)
		}
		return &BenchReport{
			Kind: "cluster",
			Cluster: &ClusterBench{
				Nodes: 3, DurationSeconds: 20, TxApplied: 50,
				SubmitToApplied: Quantiles{Count: 50},
				Probe:           p,
			},
		}
	}
	roundTrip := func(r *BenchReport) error {
		var buf bytes.Buffer
		if err := WriteBench(&buf, r); err != nil {
			t.Fatal(err)
		}
		_, err := CheckBench(&buf)
		return err
	}

	if err := roundTrip(mk(nil)); err != nil {
		t.Fatalf("valid probe rejected: %v", err)
	}
	cases := map[string]func(*ProbeBench){
		"no steps":             func(p *ProbeBench) { p.Steps = nil },
		"totals disagree":      func(p *ProbeBench) { p.Accepted = 49 },
		"outcomes exceed subs": func(p *ProbeBench) { p.Steps[0].Rejected503 = 1 },
		"429 without retry":    func(p *ProbeBench) { p.RetryAfterValid = false },
		"accepted then lost":   func(p *ProbeBench) { p.AcceptedThenLost = 2 },
		"zero-rate step":       func(p *ProbeBench) { p.Steps[1].OfferedTxPerSecond = 0 },
	}
	for name, mut := range cases {
		if err := roundTrip(mk(mut)); err == nil {
			t.Errorf("%s: invalid probe accepted", name)
		}
	}
}

func TestParseGoBench(t *testing.T) {
	out := `goos: linux
goarch: amd64
BenchmarkSCPRound-8         	     100	  11438775 ns/op	    1024 B/op	      12 allocs/op
BenchmarkVerifyTxSet        	      50	     22000 ns/op	   57.20 MB/s
BenchmarkApplyTxSetParallel/disjoint/workers=8         	      20	   1500000 ns/op	     14000 ops/s	         8.000 sched-speedup
some log line
PASS
ok  	stellar	1.2s
`
	rows, err := ParseGoBench(strings.NewReader(out))
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("parsed %d rows, want 3", len(rows))
	}
	if rows[0].Name != "BenchmarkSCPRound" || rows[0].NsPerOp != 11438775 ||
		rows[0].BytesPerOp != 1024 || rows[0].AllocsPerOp != 12 {
		t.Errorf("row 0: %+v", rows[0])
	}
	if rows[1].Name != "BenchmarkVerifyTxSet" || rows[1].MBPerSec != 57.2 {
		t.Errorf("row 1: %+v", rows[1])
	}
	if rows[2].Extra["ops/s"] != 14000 || rows[2].Extra["sched-speedup"] != 8 {
		t.Errorf("row 2 custom metrics: %+v", rows[2])
	}
}

func TestStatusAndFleetTable(t *testing.T) {
	s := syntheticScrapes()[0]
	s.Metrics = Metrics{
		"herder_ledgers_closed_total": 9,
		"herder_tx_per_ledger_sum":    120,
		"transport_peers":             2,
		"quorum_available":            1,
		"trace_spans_dropped":         0,
	}
	s.Ledger = &LedgerInfo{Sequence: 10, CloseTime: s.FetchedAt.Unix() - 1}
	st := Status(s, nil)
	if st.LedgerSeq != 10 || st.Peers != 2 || !st.QuorumAvail {
		t.Fatalf("status %+v", st)
	}
	if st.TxPerSecond >= 0 {
		t.Error("tx/s must be unknown with no previous pass")
	}
	table := FleetTable([]NodeStatus{st, {Name: "node-x", Err: "connection refused"}})
	if !strings.Contains(table, "node-a") || !strings.Contains(table, "DOWN: connection refused") {
		t.Errorf("table:\n%s", table)
	}
}
