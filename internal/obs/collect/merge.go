package collect

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"stellar/internal/obs"
)

// Merging per-process span stores into one cluster trace.
//
// Clock alignment: every wall-clock tracer exports EpochUnixNanos (the
// absolute time of its clock zero) and span times relative to that epoch.
// Machine clocks disagree, so each node's timestamps are corrected by the
// offset estimated during its scrape (see Scrape.OffsetNanos): a span's
// absolute time in the collector's frame is
//
//	abs = EpochUnixNanos + span.Start − OffsetNanos
//
// and the merged trace rebases everything to the earliest span so Perfetto
// renders from t=0. Span ids are globally unique by construction — each
// process ORs a pubkey-derived base into its ids (Tracer.SetIDBase) — so
// parent links and cross-process remote_parent references survive the
// merge without remapping.

// MergeStats reports what the merge did; CI fails the obs-smoke job when
// SpansOut != SpansIn (the merge itself must be lossless) and surfaces
// source-side drops separately (bounded tracers discard past capacity).
type MergeStats struct {
	Nodes           int   `json:"nodes"`
	SpansIn         int   `json:"spans_in"`
	SpansOut        int   `json:"spans_out"`
	DroppedAtSource int64 `json:"dropped_at_source"`
	// CrossLinks counts remote_parent references resolved across two
	// different nodes' stores; Unresolved counts references whose parent
	// span is in no scraped store (evicted, or the node was unreachable).
	CrossLinks int `json:"cross_links"`
	Unresolved int `json:"unresolved_remote_parents"`
	// MaxOffsetNanos is the largest absolute estimated clock offset —
	// a sanity signal for the alignment quality.
	MaxOffsetNanos int64 `json:"max_offset_nanos"`
}

// Lossless reports whether every scraped span made it into the output.
func (st *MergeStats) Lossless() bool { return st.SpansIn == st.SpansOut }

// chromeEvent mirrors the trace-event JSON Object Format (Perfetto).
type chromeEvent struct {
	Name string            `json:"name"`
	Cat  string            `json:"cat,omitempty"`
	Ph   string            `json:"ph"`
	Ts   float64           `json:"ts"` // microseconds
	Dur  *float64          `json:"dur,omitempty"`
	Pid  int               `json:"pid"`
	Tid  int               `json:"tid"`
	ID   string            `json:"id,omitempty"`
	BP   string            `json:"bp,omitempty"`
	Args map[string]string `json:"args,omitempty"`
}

type chromeTrace struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// mergedSpan is one span placed on the collector's aligned timeline.
type mergedSpan struct {
	*obs.ExportSpan
	node     int // index into the scrape list (merged-trace pid − 1)
	absStart int64
	absEnd   int64
}

// align flattens the scraped exports onto one absolute timeline.
func align(scrapes []*Scrape) ([]mergedSpan, *MergeStats) {
	stats := &MergeStats{}
	var spans []mergedSpan
	for ni, s := range scrapes {
		if s.Err != nil || s.Export == nil {
			continue
		}
		stats.Nodes++
		stats.DroppedAtSource += int64(s.Export.Dropped)
		if off := abs64(s.OffsetNanos); off > stats.MaxOffsetNanos {
			stats.MaxOffsetNanos = off
		}
		base := s.Export.EpochUnixNanos - s.OffsetNanos
		for i := range s.Export.Spans {
			sp := &s.Export.Spans[i]
			stats.SpansIn++
			spans = append(spans, mergedSpan{
				ExportSpan: sp,
				node:       ni,
				absStart:   base + sp.StartNanos,
				absEnd:     base + sp.EndNanos,
			})
		}
	}
	sort.Slice(spans, func(i, j int) bool {
		if spans[i].absStart != spans[j].absStart {
			return spans[i].absStart < spans[j].absStart
		}
		return spans[i].ID < spans[j].ID
	})
	return spans, stats
}

func abs64(v int64) int64 {
	if v < 0 {
		return -v
	}
	return v
}

// Merge renders the scraped span stores as one Perfetto-loadable trace.
// Each node becomes a process (pid); its tracks become threads. Every
// remote_parent reference that resolves in the merged set gains a flow
// arrow, which is what makes one transaction's lifecycle legible across
// three processes.
func Merge(scrapes []*Scrape, w io.Writer) (*MergeStats, error) {
	spans, stats := align(scrapes)

	out := chromeTrace{DisplayTimeUnit: "ms", TraceEvents: []chromeEvent{}}
	for ni, s := range scrapes {
		if s.Err != nil || s.Export == nil {
			continue
		}
		out.TraceEvents = append(out.TraceEvents, chromeEvent{
			Name: "process_name", Ph: "M", Pid: ni + 1,
			Args: map[string]string{"name": s.Name()},
		})
	}

	var t0 int64
	if len(spans) > 0 {
		t0 = spans[0].absStart
	}
	usec := func(abs int64) float64 { return float64(abs-t0) / 1e3 }

	type trackKey struct {
		node  int
		track string
	}
	tids := make(map[trackKey]int)
	byID := make(map[uint64]*mergedSpan, len(spans))
	for i := range spans {
		sp := &spans[i]
		byID[sp.ID] = sp
		key := trackKey{sp.node, sp.Track}
		if _, ok := tids[key]; !ok {
			tid := len(tids) + 1
			tids[key] = tid
			out.TraceEvents = append(out.TraceEvents, chromeEvent{
				Name: "thread_name", Ph: "M", Pid: sp.node + 1, Tid: tid,
				Args: map[string]string{"name": sp.Track},
			})
		}
	}

	flowSeq := 0
	emitFlow := func(from, to *mergedSpan) {
		flowSeq++
		id := fmt.Sprintf("f%d", flowSeq)
		toTs := usec(to.absStart)
		if from.absStart > to.absStart {
			toTs = usec(from.absStart)
		}
		out.TraceEvents = append(out.TraceEvents,
			chromeEvent{Name: "flow", Cat: "flow", Ph: "s", Ts: usec(from.absStart),
				Pid: from.node + 1, Tid: tids[trackKey{from.node, from.Track}], ID: id},
			chromeEvent{Name: "flow", Cat: "flow", Ph: "f", BP: "e", Ts: toTs,
				Pid: to.node + 1, Tid: tids[trackKey{to.node, to.Track}], ID: id},
		)
	}

	for i := range spans {
		sp := &spans[i]
		args := map[string]string{
			"id":    fmt.Sprintf("%d", sp.ID),
			"trace": fmt.Sprintf("%d", sp.Trace),
		}
		if sp.Parent != 0 {
			args["parent"] = fmt.Sprintf("%d", sp.Parent)
		}
		if sp.RemoteParent != 0 {
			args["remote_parent"] = fmt.Sprintf("%d", sp.RemoteParent)
			if sp.Origin != "" {
				args["origin"] = sp.Origin
			}
		}
		for k, v := range sp.Args {
			args[k] = v
		}
		if sp.Open {
			args["unfinished"] = "true"
		}
		end := sp.absEnd
		if end < sp.absStart {
			end = sp.absStart
		}
		dur := float64(end-sp.absStart) / 1e3
		out.TraceEvents = append(out.TraceEvents, chromeEvent{
			Name: sp.Name, Cat: sp.Track, Ph: "X",
			Ts: usec(sp.absStart), Dur: &dur,
			Pid: sp.node + 1, Tid: tids[trackKey{sp.node, sp.Track}],
			Args: args,
		})
		stats.SpansOut++
		// In-process cross-track parent arrow, as the single-node exporter
		// draws it.
		if p := byID[sp.Parent]; p != nil && (p.node != sp.node || p.Track != sp.Track) {
			emitFlow(p, sp)
		}
		// Cross-process continuation arrow.
		if sp.RemoteParent != 0 {
			if p := byID[sp.RemoteParent]; p != nil {
				emitFlow(p, sp)
				if p.node != sp.node {
					stats.CrossLinks++
				}
			} else {
				stats.Unresolved++
			}
		}
	}

	// Explicit per-node flow arrows recorded by the tracers themselves.
	for _, s := range scrapes {
		if s.Err != nil || s.Export == nil {
			continue
		}
		for _, f := range s.Export.Flows {
			from, to := byID[f[0]], byID[f[1]]
			if from != nil && to != nil {
				emitFlow(from, to)
			}
		}
	}

	return stats, json.NewEncoder(w).Encode(&out)
}
