package collect

import (
	"fmt"
	"strings"
	"time"

	"stellar/internal/obs/slo"
)

// The live fleet table: one row per node, derived from a scrape pass.
// This is the §7 operator's view — is the quorum healthy, is every node
// closing at cadence, which link is shedding.

// NodeStatus is one node's row.
type NodeStatus struct {
	Name string `json:"name"`
	URL  string `json:"url"`
	Err  string `json:"error,omitempty"`

	LedgerSeq uint32 `json:"ledger_seq"`
	// CloseLagSeconds is how far behind the node's last close time sits
	// against the collector's (offset-corrected) clock.
	CloseLagSeconds float64 `json:"close_lag_seconds"`
	LedgersClosed   float64 `json:"ledgers_closed"`
	// TxPerSecond is the applied-transaction rate; it needs two passes
	// (watch mode) and is negative when unknown.
	TxPerSecond   float64 `json:"tx_per_second"`
	TxApplied     float64 `json:"tx_applied"`
	PendingTxs    float64 `json:"pending_txs"`
	Peers         float64 `json:"peers"`
	QuorumAvail   bool    `json:"quorum_available"`
	SpansRecorded float64 `json:"trace_spans_recorded"`
	SpansDropped  float64 `json:"trace_spans_dropped"`
	OffsetMillis  float64 `json:"clock_offset_ms"`
	// Alerts summarizes the node's own SLO verdict: "?" when the node
	// serves no /debug/alerts, "off" when alerting is disabled, "ok" when
	// nothing fires, else the firing alert names.
	Alerts string `json:"alerts"`
}

// alertsSummary compresses a node's alert report into one table cell.
func alertsSummary(rep *slo.Report) string {
	switch {
	case rep == nil:
		return "?"
	case !rep.Enabled:
		return "off"
	case rep.Firing == 0:
		return "ok"
	}
	var names []string
	for _, a := range rep.Alerts {
		if a.State == slo.StateFiring.String() {
			names = append(names, a.Name)
		}
	}
	return strings.Join(names, ",")
}

// Status derives one node's row from its scrape; prev (same node, earlier
// pass) enables rates and may be nil.
func Status(s *Scrape, prev *Scrape) NodeStatus {
	st := NodeStatus{Name: s.Name(), URL: s.Target.URL, TxPerSecond: -1}
	if s.Err != nil {
		st.Err = s.Err.Error()
		return st
	}
	m := s.Metrics
	st.LedgersClosed = m.Sum("herder_ledgers_closed_total")
	st.TxApplied = m.Sum("herder_tx_per_ledger_sum")
	st.PendingTxs = m.Sum("herder_pending_txs")
	st.Peers = m.Sum("transport_peers")
	st.QuorumAvail = m.Sum("quorum_available") > 0
	st.SpansRecorded = m.Sum("trace_spans_recorded")
	st.SpansDropped = m.Sum("trace_spans_dropped")
	st.OffsetMillis = float64(s.OffsetNanos) / 1e6
	st.Alerts = alertsSummary(s.Alerts)
	if s.Ledger != nil {
		st.LedgerSeq = s.Ledger.Sequence
		// The node's close time is on its own clock; compare in that frame.
		nodeNow := s.FetchedAt.UnixNano() + s.OffsetNanos
		st.CloseLagSeconds = float64(nodeNow)/1e9 - float64(s.Ledger.CloseTime)
	}
	if prev != nil && prev.Err == nil && prev.Metrics != nil {
		dt := s.FetchedAt.Sub(prev.FetchedAt).Seconds()
		if dt > 0 {
			st.TxPerSecond = (st.TxApplied - prev.Metrics.Sum("herder_tx_per_ledger_sum")) / dt
		}
	}
	return st
}

// FleetTable renders the rows as a fixed-width text table.
func FleetTable(rows []NodeStatus) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-12s %7s %9s %8s %7s %6s %6s %7s %9s %9s %s\n",
		"NODE", "LEDGER", "CLOSELAG", "TX/S", "APPLIED", "PEND", "PEERS", "QUORUM", "SPANS", "OFFSET", "ALERTS")
	for _, r := range rows {
		if r.Err != "" {
			fmt.Fprintf(&b, "%-12s DOWN: %s\n", r.Name, r.Err)
			continue
		}
		txps := "-"
		if r.TxPerSecond >= 0 {
			txps = fmt.Sprintf("%.1f", r.TxPerSecond)
		}
		quorum := "avail"
		if !r.QuorumAvail {
			quorum = "AT-RISK"
		}
		spans := fmt.Sprintf("%.0f", r.SpansRecorded)
		if r.SpansDropped > 0 {
			spans += fmt.Sprintf("(-%.0f)", r.SpansDropped)
		}
		fmt.Fprintf(&b, "%-12s %7d %8.1fs %8s %7.0f %6.0f %6.0f %7s %9s %8.1fms %s\n",
			r.Name, r.LedgerSeq, r.CloseLagSeconds, txps, r.TxApplied,
			r.PendingTxs, r.Peers, quorum, spans, r.OffsetMillis, r.Alerts)
	}
	return b.String()
}

// Watch scrapes the targets every interval and renders a table per pass
// through emit, until passes are exhausted (0 = forever). It is the
// engine behind `stellar-obs table -watch`.
func Watch(c *Client, targets []Target, interval time.Duration, passes int, emit func(string)) {
	var prev []*Scrape
	for i := 0; passes == 0 || i < passes; i++ {
		if i > 0 {
			time.Sleep(interval)
		}
		cur := c.ScrapeAll(targets)
		rows := make([]NodeStatus, len(cur))
		for j, s := range cur {
			var p *Scrape
			if prev != nil {
				p = prev[j]
			}
			rows[j] = Status(s, p)
		}
		emit(FleetTable(rows))
		prev = cur
	}
}
