package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

// manualClock is a settable virtual clock for tracer tests.
type manualClock struct {
	mu  sync.Mutex
	now time.Duration
}

func (c *manualClock) Now() time.Duration {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *manualClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.now += d
	c.mu.Unlock()
}

func newTestTracer() (*Tracer, *manualClock) {
	clk := &manualClock{}
	return NewTracer(clk.Now), clk
}

func TestNilTracerFastPath(t *testing.T) {
	// Every method on the nil path must be callable without panicking and
	// produce nil/zero results.
	var tr *Tracer
	if p := tr.Proc("node"); p != nil {
		t.Fatalf("nil tracer Proc = %v, want nil", p)
	}
	var p *Proc
	if s := p.Span("track", "slot"); s != nil {
		t.Fatalf("nil proc Span = %v, want nil", s)
	}
	if got := p.Tracer(); got != nil {
		t.Fatalf("nil proc Tracer = %v, want nil", got)
	}
	var s *Span
	if c := s.Child("x"); c != nil {
		t.Fatalf("nil span Child = %v, want nil", c)
	}
	if c := s.ChildOn("t", "x"); c != nil {
		t.Fatalf("nil span ChildOn = %v, want nil", c)
	}
	if c := s.CompleteChild("x", time.Second); c != nil {
		t.Fatalf("nil span CompleteChild = %v, want nil", c)
	}
	s.Arg("k", "v")
	s.End()
	s.EndAfter(time.Second)
	if id := s.ID(); id != 0 {
		t.Fatalf("nil span ID = %d, want 0", id)
	}
	tr.Flow(nil, nil)
	tr.SetLimit(10)
	if d := tr.Dropped(); d != 0 {
		t.Fatalf("nil tracer Dropped = %d, want 0", d)
	}
	if now := tr.Now(); now != 0 {
		t.Fatalf("nil tracer Now = %v, want 0", now)
	}
	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatalf("nil tracer WriteChromeTrace: %v", err)
	}
	var out map[string]any
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatalf("nil tracer output not JSON: %v", err)
	}
}

func TestSpanHierarchyAndClock(t *testing.T) {
	tr, clk := newTestTracer()
	p := tr.Proc("node 1")

	slot := p.Span("consensus", SpanSlot)
	clk.Advance(100 * time.Millisecond)
	nom := slot.Child(SpanNomination)
	clk.Advance(400 * time.Millisecond)
	nom.End()
	bal := slot.Child(SpanBalloting)
	clk.Advance(1500 * time.Millisecond)
	bal.End()
	slot.End()

	spans, _, procs := tr.snapshot()
	if len(procs) != 1 || procs[0] != "node 1" {
		t.Fatalf("procs = %v", procs)
	}
	if len(spans) != 3 {
		t.Fatalf("got %d spans, want 3", len(spans))
	}
	byName := map[string]spanRec{}
	for _, s := range spans {
		byName[s.name] = s
	}
	if got := byName[SpanSlot]; got.start != 0 || got.end != 2*time.Second {
		t.Fatalf("slot span [%v,%v], want [0,2s]", got.start, got.end)
	}
	if got := byName[SpanNomination]; got.start != 100*time.Millisecond || got.end != 500*time.Millisecond {
		t.Fatalf("nomination span [%v,%v]", got.start, got.end)
	}
	if byName[SpanNomination].parent != byName[SpanSlot].id {
		t.Fatalf("nomination parent = %d, want %d", byName[SpanNomination].parent, byName[SpanSlot].id)
	}
	if byName[SpanBalloting].parent != byName[SpanSlot].id {
		t.Fatalf("balloting parent wrong")
	}
}

func TestParentEndCoversChildren(t *testing.T) {
	// A parent ended "before" a child's explicitly measured end must be
	// stretched to contain it (CompleteChild lays out wall-measured work
	// inside a virtually instantaneous parent).
	tr, clk := newTestTracer()
	p := tr.Proc("n")
	apply := p.Span("consensus", SpanApply)
	apply.CompleteChild(SpanSigPrepass, 3*time.Millisecond)
	apply.CompleteChild(SpanTxApply, 7*time.Millisecond)
	mrg := apply.CompleteChild(SpanBucketMerge, 2*time.Millisecond)
	if mrg == nil {
		t.Fatal("CompleteChild returned nil on live tracer")
	}
	clk.Advance(time.Microsecond) // virtual clock barely moves
	apply.End()

	spans, _, _ := tr.snapshot()
	byName := map[string]spanRec{}
	for _, s := range spans {
		byName[s.name] = s
	}
	// Children laid out sequentially from the parent's start.
	if got := byName[SpanSigPrepass]; got.start != 0 || got.end != 3*time.Millisecond {
		t.Fatalf("prepass [%v,%v]", got.start, got.end)
	}
	if got := byName[SpanTxApply]; got.start != 3*time.Millisecond || got.end != 10*time.Millisecond {
		t.Fatalf("tx-apply [%v,%v]", got.start, got.end)
	}
	if got := byName[SpanBucketMerge]; got.start != 10*time.Millisecond || got.end != 12*time.Millisecond {
		t.Fatalf("bucket-merge [%v,%v]", got.start, got.end)
	}
	// Parent stretched over all children despite the clock reading ~0.
	if got := byName[SpanApply]; got.end != 12*time.Millisecond {
		t.Fatalf("apply end = %v, want 12ms", got.end)
	}
}

func TestEndAfter(t *testing.T) {
	tr, clk := newTestTracer()
	p := tr.Proc("n")
	clk.Advance(time.Second)
	s := p.Span("t", "work")
	s.EndAfter(250 * time.Millisecond)
	spans, _, _ := tr.snapshot()
	if spans[0].start != time.Second || spans[0].end != 1250*time.Millisecond {
		t.Fatalf("span [%v,%v]", spans[0].start, spans[0].end)
	}
	// Negative duration clamps to zero-length.
	s2 := p.Span("t", "neg")
	s2.EndAfter(-time.Second)
	spans, _, _ = tr.snapshot()
	for _, sp := range spans {
		if sp.name == "neg" && sp.end != sp.start {
			t.Fatalf("neg span [%v,%v]", sp.start, sp.end)
		}
	}
}

func TestChildEndPropagatesThroughAncestors(t *testing.T) {
	tr, _ := newTestTracer()
	p := tr.Proc("n")
	root := p.Span("t", "root")
	mid := root.Child("mid")
	leaf := mid.Child("leaf")
	leaf.EndAfter(time.Second)
	mid.End()
	root.End()
	spans, _, _ := tr.snapshot()
	for _, sp := range spans {
		if sp.end != time.Second {
			t.Fatalf("%s ends at %v, want 1s", sp.name, sp.end)
		}
	}
}

func TestDoubleEndIsIdempotent(t *testing.T) {
	tr, clk := newTestTracer()
	p := tr.Proc("n")
	s := p.Span("t", "x")
	clk.Advance(time.Second)
	s.End()
	clk.Advance(time.Second)
	s.End() // must not re-record or move the end
	spans, _, _ := tr.snapshot()
	if len(spans) != 1 {
		t.Fatalf("got %d spans after double End", len(spans))
	}
	if spans[0].end != time.Second {
		t.Fatalf("end moved to %v", spans[0].end)
	}
}

func TestSpanLimitDropsAndCounts(t *testing.T) {
	tr, _ := newTestTracer()
	tr.SetLimit(2)
	p := tr.Proc("n")
	a := p.Span("t", "a")
	b := p.Span("t", "b")
	c := p.Span("t", "c") // over limit
	if c != nil {
		t.Fatalf("span over limit = %v, want nil", c)
	}
	if got := tr.Dropped(); got != 1 {
		t.Fatalf("dropped = %d, want 1", got)
	}
	// Nil-safe chaining keeps working off the dropped span.
	c.Child("x").End()
	a.End()
	b.End()
}

func TestOpenSpansExportAsUnfinished(t *testing.T) {
	tr, clk := newTestTracer()
	p := tr.Proc("n")
	p.Span("t", "hanging")
	clk.Advance(time.Second)
	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"unfinished":"true"`) {
		t.Fatalf("open span not marked unfinished: %s", buf.String())
	}
}

func TestWriteChromeTraceFormat(t *testing.T) {
	tr, clk := newTestTracer()
	node := tr.Proc("node 1")

	slot := node.Span("consensus", SpanSlot)
	slot.Arg("seq", "2")
	tx := node.Span("tx 00aa", SpanTx)
	pending := tx.Child(SpanTxPending)
	clk.Advance(time.Second)
	pending.End()
	tr.Flow(pending, slot)
	cons := tx.Child(SpanTxConsensus)
	clk.Advance(4 * time.Second)
	cons.End()
	tx.End()
	slot.End()

	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var out struct {
		TraceEvents []struct {
			Name string            `json:"name"`
			Ph   string            `json:"ph"`
			Ts   float64           `json:"ts"`
			Dur  float64           `json:"dur"`
			Pid  int               `json:"pid"`
			Tid  int               `json:"tid"`
			ID   string            `json:"id"`
			Args map[string]string `json:"args"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatalf("export is not valid JSON: %v", err)
	}
	if out.DisplayTimeUnit != "ms" {
		t.Fatalf("displayTimeUnit = %q", out.DisplayTimeUnit)
	}

	var xEvents, meta, flowS, flowF int
	var slotEv, pendingEv bool
	for _, ev := range out.TraceEvents {
		switch ev.Ph {
		case "X":
			xEvents++
			if ev.Pid != 1 {
				t.Fatalf("X event pid = %d, want 1", ev.Pid)
			}
			if ev.Tid == 0 {
				t.Fatalf("X event %q has zero tid", ev.Name)
			}
			if ev.Args["id"] == "" {
				t.Fatalf("X event %q missing span id arg", ev.Name)
			}
			if ev.Name == SpanSlot {
				slotEv = true
				if ev.Args["seq"] != "2" {
					t.Fatalf("slot args = %v", ev.Args)
				}
				if ev.Dur != 5e6 {
					t.Fatalf("slot dur = %v µs, want 5e6", ev.Dur)
				}
			}
			if ev.Name == SpanTxPending {
				pendingEv = true
				if ev.Args["parent"] == "" {
					t.Fatal("pending span missing parent arg")
				}
				if ev.Dur != 1e6 {
					t.Fatalf("pending dur = %v µs, want 1e6", ev.Dur)
				}
			}
		case "M":
			meta++
		case "s":
			flowS++
			if ev.ID == "" {
				t.Fatal("flow start without id")
			}
		case "f":
			flowF++
		default:
			t.Fatalf("unexpected ph %q", ev.Ph)
		}
	}
	if xEvents != 4 {
		t.Fatalf("got %d X events, want 4", xEvents)
	}
	if !slotEv || !pendingEv {
		t.Fatal("missing slot or pending X event")
	}
	// 1 process_name + 2 thread_name (consensus, tx 00aa) metadata events.
	if meta != 3 {
		t.Fatalf("got %d metadata events, want 3", meta)
	}
	// One explicit Flow call → one s/f pair.
	if flowS != 1 || flowF != 1 {
		t.Fatalf("flow events s=%d f=%d, want 1/1", flowS, flowF)
	}
}

func TestMultiProcessExport(t *testing.T) {
	tr, _ := newTestTracer()
	a := tr.Proc("node a")
	b := tr.Proc("node b")
	sa := a.Span("consensus", SpanSlot)
	sb := b.Span("consensus", SpanSlot)
	sa.End()
	sb.End()
	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var out struct {
		TraceEvents []struct {
			Ph  string `json:"ph"`
			Pid int    `json:"pid"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatal(err)
	}
	pids := map[int]bool{}
	for _, ev := range out.TraceEvents {
		if ev.Ph == "X" {
			pids[ev.Pid] = true
		}
	}
	if !pids[1] || !pids[2] {
		t.Fatalf("pids = %v, want {1,2}", pids)
	}
}

func TestTracerConcurrency(t *testing.T) {
	// The tracer is shared across goroutines in horizon-demo; hammer it.
	tr, _ := newTestTracer()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			p := tr.Proc("node")
			for i := 0; i < 200; i++ {
				s := p.Span("t", "work")
				c := s.Child("sub")
				c.Arg("i", "x")
				s.CompleteChild("measured", time.Millisecond)
				c.End()
				s.End()
			}
		}(g)
	}
	wg.Wait()
	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
}
