package obs

import (
	"fmt"
	"sort"
	"sync"
	"time"
)

// EventKind identifies one step of the SCP protocol lifecycle. The kinds
// cover the paper's Fig 2 walk-through: nomination rounds feeding the
// ballot protocol's prepare → commit → externalize exchanges, plus the
// timeouts and envelope traffic that §7.2–§7.3 measure.
type EventKind uint8

// Protocol trace event kinds, in rough lifecycle order.
const (
	EvNominationStart    EventKind = iota // herder started nominating a value
	EvNominationRound                     // nomination escalated to a new round
	EvCandidateConfirmed                  // first value confirmed nominated
	EvBallotPrepare                       // moved to a new ballot (prepare voting)
	EvAcceptPrepare                       // accepted a ballot as prepared
	EvConfirmPrepare                      // confirmed a ballot prepared (commit voting)
	EvAcceptCommit                        // accepted commit: value is fixed
	EvExternalize                         // slot decided
	EvLedgerApplied                       // decided value applied to the ledger
	EvTimeout                             // a nomination or ballot timer fired
	EvEnvelopeEmit                        // this node broadcast an SCP envelope
	EvEnvelopeRecv                        // an SCP envelope arrived from a peer
)

var eventKindNames = [...]string{
	EvNominationStart:    "nomination_start",
	EvNominationRound:    "nomination_round",
	EvCandidateConfirmed: "candidate_confirmed",
	EvBallotPrepare:      "ballot_prepare",
	EvAcceptPrepare:      "accept_prepare",
	EvConfirmPrepare:     "confirm_prepare",
	EvAcceptCommit:       "accept_commit",
	EvExternalize:        "externalize",
	EvLedgerApplied:      "ledger_applied",
	EvTimeout:            "timeout",
	EvEnvelopeEmit:       "envelope_emit",
	EvEnvelopeRecv:       "envelope_recv",
}

// String names the kind for logs and the trace endpoint.
func (k EventKind) String() string {
	if int(k) < len(eventKindNames) {
		return eventKindNames[k]
	}
	return fmt.Sprintf("EventKind(%d)", int(k))
}

// Event is one protocol occurrence on one node.
type Event struct {
	// At is the node's (virtual) clock when the event happened.
	At time.Duration
	// Slot is the SCP slot (= ledger sequence) the event belongs to.
	Slot uint64
	Kind EventKind
	// Counter carries the ballot counter or nomination round, when
	// meaningful.
	Counter uint32
	// Peer identifies the remote node for envelope receive events.
	Peer string
	// Detail is a short free-form annotation (statement type, timer
	// kind, value digest).
	Detail string
}

// DefaultTraceCapacity bounds a recorder's memory: with ~25 events per
// slot on a small network this holds a few hundred recent slots.
const DefaultTraceCapacity = 8192

// Recorder is a bounded ring buffer of protocol events. Writers are the
// consensus hot path, so Record is a mutex-guarded append with no
// allocation; readers reconstruct per-slot timelines from a copy.
type Recorder struct {
	mu    sync.Mutex
	buf   []Event
	next  int
	total uint64 // events ever recorded; total-len(live) have been evicted
}

// NewRecorder creates a recorder holding up to capacity events
// (capacity ≤ 0 selects DefaultTraceCapacity).
func NewRecorder(capacity int) *Recorder {
	if capacity <= 0 {
		capacity = DefaultTraceCapacity
	}
	return &Recorder{buf: make([]Event, 0, capacity)}
}

// Record appends one event, evicting the oldest when full.
func (r *Recorder) Record(ev Event) {
	r.mu.Lock()
	if len(r.buf) < cap(r.buf) {
		r.buf = append(r.buf, ev)
	} else {
		r.buf[r.next] = ev
		r.next = (r.next + 1) % cap(r.buf)
	}
	r.total++
	r.mu.Unlock()
}

// Total reports how many events were ever recorded (including evicted).
func (r *Recorder) Total() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.total
}

// Events returns a chronological copy of the live buffer.
func (r *Recorder) Events() []Event {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Event, 0, len(r.buf))
	out = append(out, r.buf[r.next:]...)
	out = append(out, r.buf[:r.next]...)
	return out
}

// SlotEvents returns the live events for one slot, oldest first.
func (r *Recorder) SlotEvents(slot uint64) []Event {
	all := r.Events()
	out := all[:0:0]
	for _, ev := range all {
		if ev.Slot == slot {
			out = append(out, ev)
		}
	}
	return out
}

// Timeline is a reconstructed per-slot consensus history: the §7.3 phase
// breakdown (nomination → balloting → apply) recovered from raw events.
type Timeline struct {
	Slot   uint64
	Events []Event

	// Phase boundary timestamps; a zero Has* means the boundary was not
	// observed (still running, or evicted from the ring).
	HasNomination  bool
	NominationAt   time.Duration
	HasPrepare     bool
	FirstPrepareAt time.Duration
	HasCommit      bool
	AcceptCommitAt time.Duration
	HasDecision    bool
	ExternalizedAt time.Duration
	HasApplied     bool
	AppliedAt      time.Duration

	// Derived durations (zero when a boundary is missing). Nomination and
	// Balloting correspond to the paper's Fig 9–11 series.
	Nomination time.Duration // nomination start → first prepare
	Balloting  time.Duration // first prepare → externalize
	Total      time.Duration // nomination start → externalize

	// Volume counters over the slot's events.
	Timeouts         int
	NominationRounds int
	EnvelopesEmitted int
	EnvelopesRecv    int
}

// SlotTimeline reconstructs the timeline for one slot from the live
// events. Events arrive in recording order, which the single-threaded
// consensus core already guarantees is chronological per node.
func (r *Recorder) SlotTimeline(slot uint64) Timeline {
	evs := r.SlotEvents(slot)
	sort.SliceStable(evs, func(i, j int) bool { return evs[i].At < evs[j].At })
	tl := Timeline{Slot: slot, Events: evs}
	for _, ev := range evs {
		switch ev.Kind {
		case EvNominationStart:
			if !tl.HasNomination {
				tl.HasNomination = true
				tl.NominationAt = ev.At
			}
		case EvNominationRound:
			tl.NominationRounds++
		case EvBallotPrepare:
			if !tl.HasPrepare {
				tl.HasPrepare = true
				tl.FirstPrepareAt = ev.At
			}
		case EvAcceptCommit:
			if !tl.HasCommit {
				tl.HasCommit = true
				tl.AcceptCommitAt = ev.At
			}
		case EvExternalize:
			if !tl.HasDecision {
				tl.HasDecision = true
				tl.ExternalizedAt = ev.At
			}
		case EvLedgerApplied:
			if !tl.HasApplied {
				tl.HasApplied = true
				tl.AppliedAt = ev.At
			}
		case EvTimeout:
			tl.Timeouts++
		case EvEnvelopeEmit:
			tl.EnvelopesEmitted++
		case EvEnvelopeRecv:
			tl.EnvelopesRecv++
		}
	}
	if tl.HasNomination && tl.HasPrepare {
		tl.Nomination = tl.FirstPrepareAt - tl.NominationAt
	}
	if tl.HasPrepare && tl.HasDecision {
		tl.Balloting = tl.ExternalizedAt - tl.FirstPrepareAt
	}
	if tl.HasNomination && tl.HasDecision {
		tl.Total = tl.ExternalizedAt - tl.NominationAt
	}
	return tl
}
