package bucket

import (
	"fmt"
	"io"
	"sort"

	"stellar/internal/stellarcrypto"
	"stellar/internal/xdr"
)

// Store is a content-addressed repository of immutable buckets. The two
// implementations — MemStore here and the disk-backed store in
// internal/bucket/disk — are interchangeable: a bucket's hash is defined
// over its canonical entry encoding (AppendEntryEncoding), not over any
// storage representation, so a List backed by either store produces
// byte-identical level and snapshot hashes.
type Store interface {
	// Put persists a bucket; storing the same content twice is a no-op.
	Put(b *Bucket) error
	// Load returns the fully decoded bucket for a hash. Implementations
	// may cache hot buckets; callers must not mutate the result.
	Load(h stellarcrypto.Hash) (*Bucket, error)
	// Reader streams the bucket's entries in key order without
	// materializing the whole bucket.
	Reader(h stellarcrypto.Hash) (EntryReader, error)
	// Writer starts streaming a new bucket into the store. Entries must
	// be appended in strictly increasing key order.
	Writer() BucketWriter
	// Has reports whether the store holds a bucket with this hash.
	Has(h stellarcrypto.Hash) bool
}

// EntryReader streams bucket entries in key order; Next returns io.EOF
// after the last entry.
type EntryReader interface {
	Next() (Entry, error)
	Close() error
}

// BucketWriter accumulates a new bucket entry by entry. Commit finalizes
// it, returning the content hash and entry count; the bucket is then
// addressable in the store. Abort discards a partial write.
type BucketWriter interface {
	Append(e Entry) error
	Commit() (stellarcrypto.Hash, int, error)
	Abort()
}

// AppendEntryEncoding appends one entry's canonical encoding to e. This is
// the unit the bucket content hash is defined over: a bucket's hash is
// SHA-256 of its entries' encodings concatenated in key order, which both
// the in-memory rehash and the disk store's streaming writer compute.
func AppendEntryEncoding(e *xdr.Encoder, entry Entry) {
	e.PutString(entry.Key)
	if entry.Data == nil {
		e.PutBool(false)
	} else {
		e.PutBool(true)
		e.PutBytes(entry.Data)
	}
}

// sliceReader adapts an in-memory entry slice to EntryReader.
type sliceReader struct {
	entries []Entry
	next    int
}

// NewSliceReader returns an EntryReader over an in-memory entry slice
// (which must already be in key order).
func NewSliceReader(entries []Entry) EntryReader {
	return &sliceReader{entries: entries}
}

func (r *sliceReader) Next() (Entry, error) {
	if r.next >= len(r.entries) {
		return Entry{}, io.EOF
	}
	e := r.entries[r.next]
	r.next++
	return e, nil
}

func (r *sliceReader) Close() error { return nil }

// MemStore is the in-memory Store: a map from hash to decoded bucket.
// It exists for tests and for symmetry with the disk store; a List with
// no store at all keeps buckets in its own level slots.
type MemStore struct {
	m map[stellarcrypto.Hash]*Bucket
}

// NewMemStore creates an empty in-memory store.
func NewMemStore() *MemStore {
	return &MemStore{m: make(map[stellarcrypto.Hash]*Bucket)}
}

// Put stores the bucket under its content hash.
func (s *MemStore) Put(b *Bucket) error {
	s.m[b.Hash()] = b
	return nil
}

// Load returns the bucket for a hash.
func (s *MemStore) Load(h stellarcrypto.Hash) (*Bucket, error) {
	b, ok := s.m[h]
	if !ok {
		return nil, fmt.Errorf("bucket: store has no bucket %s", h.Hex())
	}
	return b, nil
}

// Reader streams the bucket's entries.
func (s *MemStore) Reader(h stellarcrypto.Hash) (EntryReader, error) {
	b, err := s.Load(h)
	if err != nil {
		return nil, err
	}
	return NewSliceReader(b.Entries()), nil
}

// Has reports whether the hash is stored.
func (s *MemStore) Has(h stellarcrypto.Hash) bool {
	_, ok := s.m[h]
	return ok
}

// Writer starts a streaming write into the store.
func (s *MemStore) Writer() BucketWriter { return &memWriter{store: s} }

type memWriter struct {
	store   *MemStore
	entries []Entry
}

func (w *memWriter) Append(e Entry) error {
	if n := len(w.entries); n > 0 && e.Key <= w.entries[n-1].Key {
		return fmt.Errorf("bucket: writer keys out of order (%q after %q)", e.Key, w.entries[n-1].Key)
	}
	w.entries = append(w.entries, e)
	return nil
}

func (w *memWriter) Commit() (stellarcrypto.Hash, int, error) {
	b := NewBucket(w.entries)
	if err := w.store.Put(b); err != nil {
		return stellarcrypto.Hash{}, 0, err
	}
	return b.Hash(), b.Len(), nil
}

func (w *memWriter) Abort() { w.entries = nil }

// peekReader wraps an EntryReader with one-entry lookahead for merging.
type peekReader struct {
	r    EntryReader
	cur  Entry
	ok   bool
	err  error
	done bool
}

func newPeekReader(r EntryReader) *peekReader {
	p := &peekReader{r: r}
	p.advance()
	return p
}

func (p *peekReader) advance() {
	if p.done || p.err != nil {
		p.ok = false
		return
	}
	e, err := p.r.Next()
	if err == io.EOF {
		p.done, p.ok = true, false
		return
	}
	if err != nil {
		p.err, p.ok = err, false
		return
	}
	p.cur, p.ok = e, true
}

// MergeStreams merges the newer stream onto the older one into w with
// exactly the semantics of Merge: duplicate keys resolve to the newer
// entry, and tombstones annihilate when keepTombstones is false. Both
// inputs must be in key order. The caller commits (or aborts) w.
func MergeStreams(newer, older EntryReader, keepTombstones bool, w BucketWriter) error {
	nr, or := newPeekReader(newer), newPeekReader(older)
	for nr.ok || or.ok {
		var e Entry
		switch {
		case !or.ok:
			e = nr.cur
			nr.advance()
		case !nr.ok:
			e = or.cur
			or.advance()
		case nr.cur.Key < or.cur.Key:
			e = nr.cur
			nr.advance()
		case nr.cur.Key > or.cur.Key:
			e = or.cur
			or.advance()
		default: // same key: newer shadows older
			e = nr.cur
			nr.advance()
			or.advance()
		}
		if e.Data == nil && !keepTombstones {
			continue
		}
		if err := w.Append(e); err != nil {
			return err
		}
	}
	if nr.err != nil {
		return nr.err
	}
	return or.err
}

// SortEntries sorts entries into the canonical bucket key order.
func SortEntries(entries []Entry) {
	sort.Slice(entries, func(i, j int) bool { return entries[i].Key < entries[j].Key })
}
