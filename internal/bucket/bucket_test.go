package bucket

import (
	"fmt"
	"testing"
	"testing/quick"

	"stellar/internal/verify"
)

func e(key, val string) Entry {
	if val == "" {
		return Entry{Key: key, Data: nil}
	}
	return Entry{Key: key, Data: []byte(val)}
}

func TestBucketSortedAndHashed(t *testing.T) {
	b := NewBucket([]Entry{e("b", "2"), e("a", "1"), e("c", "3")})
	if b.Len() != 3 {
		t.Fatalf("len = %d", b.Len())
	}
	es := b.Entries()
	if es[0].Key != "a" || es[2].Key != "c" {
		t.Fatal("not sorted")
	}
	b2 := NewBucket([]Entry{e("a", "1"), e("c", "3"), e("b", "2")})
	if b.Hash() != b2.Hash() {
		t.Fatal("hash depends on insertion order")
	}
	b3 := NewBucket([]Entry{e("a", "1")})
	if b.Hash() == b3.Hash() {
		t.Fatal("different buckets hash equal")
	}
}

func TestBucketGet(t *testing.T) {
	b := NewBucket([]Entry{e("a", "1"), e("c", "3")})
	if got, ok := b.Get("a"); !ok || string(got.Data) != "1" {
		t.Fatal("Get(a) wrong")
	}
	if _, ok := b.Get("b"); ok {
		t.Fatal("Get(b) found phantom")
	}
}

func TestMergeNewerShadows(t *testing.T) {
	older := NewBucket([]Entry{e("a", "old"), e("b", "keep")})
	newer := NewBucket([]Entry{e("a", "new"), e("c", "add")})
	m := Merge(newer, older, true)
	if got, _ := m.Get("a"); string(got.Data) != "new" {
		t.Fatal("newer did not shadow")
	}
	if got, _ := m.Get("b"); string(got.Data) != "keep" {
		t.Fatal("older-only entry lost")
	}
	if m.Len() != 3 {
		t.Fatalf("merged len = %d", m.Len())
	}
}

func TestMergeTombstones(t *testing.T) {
	older := NewBucket([]Entry{e("a", "1"), e("b", "2")})
	newer := NewBucket([]Entry{e("a", "")}) // tombstone
	kept := Merge(newer, older, true)
	if got, ok := kept.Get("a"); !ok || got.Data != nil {
		t.Fatal("tombstone not preserved with keepTombstones")
	}
	dropped := Merge(newer, older, false)
	if _, ok := dropped.Get("a"); ok {
		t.Fatal("tombstone not annihilated at bottom level")
	}
	if got, ok := dropped.Get("b"); !ok || string(got.Data) != "2" {
		t.Fatal("unrelated entry lost at bottom merge")
	}
}

func TestEmptyBucket(t *testing.T) {
	if !EmptyBucket().Empty() || EmptyBucket().Len() != 0 {
		t.Fatal("empty bucket not empty")
	}
}

func TestListAddBatchAndGet(t *testing.T) {
	l := NewList()
	l.AddBatch(1, []Entry{e("x", "1")})
	if got, ok := l.Get("x"); !ok || string(got.Data) != "1" {
		t.Fatal("entry not visible after AddBatch")
	}
	l.AddBatch(2, []Entry{e("x", "2")})
	if got, _ := l.Get("x"); string(got.Data) != "2" {
		t.Fatal("newer version not returned")
	}
}

func TestListDeletionVisible(t *testing.T) {
	l := NewList()
	l.AddBatch(1, []Entry{e("x", "1")})
	l.AddBatch(2, []Entry{e("x", "")})
	if _, live := l.Get("x"); live {
		t.Fatal("deleted entry still live")
	}
}

func TestListHashChangesWithContent(t *testing.T) {
	l := NewList()
	h0 := l.Hash()
	l.AddBatch(1, []Entry{e("x", "1")})
	h1 := l.Hash()
	if h0 == h1 {
		t.Fatal("hash ignores content")
	}
	// Deterministic for the same history.
	l2 := NewList()
	l2.AddBatch(1, []Entry{e("x", "1")})
	if l2.Hash() != h1 {
		t.Fatal("hash not deterministic")
	}
}

func TestListSpillsKeepAllEntries(t *testing.T) {
	// Run many ledgers; every inserted key must remain retrievable.
	l := NewList()
	for seq := uint32(1); seq <= 200; seq++ {
		l.AddBatch(seq, []Entry{e(fmt.Sprintf("key-%03d", seq), fmt.Sprintf("v%d", seq))})
	}
	for seq := uint32(1); seq <= 200; seq++ {
		key := fmt.Sprintf("key-%03d", seq)
		got, live := l.Get(key)
		if !live || string(got.Data) != fmt.Sprintf("v%d", seq) {
			t.Fatalf("key %s lost after spills (live=%v)", key, live)
		}
	}
	// Entries must actually have spilled beyond level 0.
	b0c, _ := l.Bucket(0, false)
	b0s, _ := l.Bucket(0, true)
	if b0c.Len()+b0s.Len() >= 200 {
		t.Fatal("nothing spilled out of level 0")
	}
}

func TestListUpdatesShadowAcrossLevels(t *testing.T) {
	l := NewList()
	l.AddBatch(1, []Entry{e("k", "old")})
	// Push it down a few levels.
	for seq := uint32(2); seq <= 64; seq++ {
		l.AddBatch(seq, nil)
	}
	l.AddBatch(65, []Entry{e("k", "new")})
	if got, _ := l.Get("k"); string(got.Data) != "new" {
		t.Fatalf("stale version returned: %q", got.Data)
	}
	live := l.AllLive()
	count := 0
	for _, en := range live {
		if en.Key == "k" {
			count++
			if string(en.Data) != "new" {
				t.Fatal("AllLive returned stale version")
			}
		}
	}
	if count != 1 {
		t.Fatalf("AllLive returned %d copies", count)
	}
}

func TestAllLiveExcludesDeleted(t *testing.T) {
	l := NewList()
	l.AddBatch(1, []Entry{e("a", "1"), e("b", "2")})
	for seq := uint32(2); seq <= 16; seq++ {
		l.AddBatch(seq, nil)
	}
	l.AddBatch(17, []Entry{e("a", "")})
	live := l.AllLive()
	if len(live) != 1 || live[0].Key != "b" {
		t.Fatalf("AllLive = %v", live)
	}
}

func TestRestoreEquivalence(t *testing.T) {
	// Two lists fed the same history have the same hash and live set.
	feed := func() *List {
		l := NewList()
		for seq := uint32(1); seq <= 100; seq++ {
			var batch []Entry
			batch = append(batch, e(fmt.Sprintf("k%d", seq%10), fmt.Sprintf("v%d", seq)))
			if seq%7 == 0 {
				batch = append(batch, e(fmt.Sprintf("k%d", (seq+3)%10), ""))
			}
			l.AddBatch(seq, batch)
		}
		return l
	}
	a, b := feed(), feed()
	if a.Hash() != b.Hash() {
		t.Fatal("same history, different hashes")
	}
	la, lb := a.AllLive(), b.AllLive()
	if len(la) != len(lb) {
		t.Fatalf("live sets differ: %d vs %d", len(la), len(lb))
	}
}

func TestDiffHashes(t *testing.T) {
	l1 := NewList()
	l2 := NewList()
	l1.AddBatch(1, []Entry{e("x", "1")})
	l2.AddBatch(1, []Entry{e("x", "1")})
	if d := DiffHashes(l1.BucketHashes(), l2.BucketHashes()); len(d) != 0 {
		t.Fatalf("identical lists differ: %v", d)
	}
	l2.AddBatch(2, []Entry{e("y", "2")})
	d := DiffHashes(l1.BucketHashes(), l2.BucketHashes())
	if len(d) == 0 {
		t.Fatal("diverged lists report no diff")
	}
	// Only level 0 should differ after one extra ledger.
	for _, idx := range d {
		if idx >= 2 {
			t.Fatalf("unexpected deep-level diff at %d", idx)
		}
	}
}

func TestReconcileViaDiff(t *testing.T) {
	// A stale list catches up by copying only differing buckets.
	fresh := NewList()
	stale := NewList()
	for seq := uint32(1); seq <= 50; seq++ {
		batch := []Entry{e(fmt.Sprintf("k%02d", seq), "v")}
		fresh.AddBatch(seq, batch)
		if seq <= 30 {
			stale.AddBatch(seq, batch)
		}
	}
	// stale stopped at 30; copy differing buckets from fresh.
	diff := DiffHashes(stale.BucketHashes(), fresh.BucketHashes())
	if len(diff) == 0 {
		t.Fatal("no diff detected")
	}
	if len(diff) == len(fresh.BucketHashes()) {
		t.Fatal("diff covers everything; reconciliation saves nothing")
	}
	for _, idx := range diff {
		b, err := fresh.Bucket(idx/2, idx%2 == 1)
		if err != nil {
			t.Fatal(err)
		}
		if err := stale.SetBucket(idx/2, idx%2 == 1, b); err != nil {
			t.Fatal(err)
		}
	}
	if stale.Hash() != fresh.Hash() {
		t.Fatal("reconciliation did not converge")
	}
}

func TestHalfPeriods(t *testing.T) {
	if half(0) != 2 || half(1) != 8 || half(2) != 32 {
		t.Fatalf("half = %d %d %d", half(0), half(1), half(2))
	}
}

func TestBucketLevelBounds(t *testing.T) {
	l := NewList()
	if _, err := l.Bucket(-1, false); err == nil {
		t.Fatal("negative level accepted")
	}
	if _, err := l.Bucket(NumLevels, false); err == nil {
		t.Fatal("out-of-range level accepted")
	}
	if err := l.SetBucket(NumLevels, false, EmptyBucket()); err == nil {
		t.Fatal("SetBucket out of range accepted")
	}
}

func TestPropertyListMatchesMap(t *testing.T) {
	// The bucket list agrees with a plain map under random histories.
	f := func(ops []struct {
		Key uint8
		Val uint8
		Del bool
	}) bool {
		l := NewList()
		ref := map[string]string{}
		seq := uint32(1)
		for _, op := range ops {
			key := fmt.Sprintf("k%d", op.Key%16)
			if op.Del {
				l.AddBatch(seq, []Entry{e(key, "")})
				delete(ref, key)
			} else {
				val := fmt.Sprintf("v%d", op.Val)
				l.AddBatch(seq, []Entry{e(key, val)})
				ref[key] = val
			}
			seq++
		}
		live := l.AllLive()
		if len(live) != len(ref) {
			return false
		}
		for _, en := range live {
			if ref[en.Key] != string(en.Data) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestAddBatchParallelMatchesSequential(t *testing.T) {
	// The pooled spill path must produce byte-identical buckets and list
	// hash at every step of a long, spill-heavy history.
	seqList := NewList()
	parList := NewList()
	parList.SetPool(verify.NewPool(4))
	for seq := uint32(1); seq <= 300; seq++ {
		var batch []Entry
		for k := 0; k < 5; k++ {
			key := fmt.Sprintf("k%03d", (int(seq)*7+k*13)%97)
			if (int(seq)+k)%11 == 0 {
				batch = append(batch, e(key, "")) // tombstone
			} else {
				batch = append(batch, e(key, fmt.Sprintf("v%d-%d", seq, k)))
			}
		}
		seqList.AddBatch(seq, batch)
		parList.AddBatch(seq, batch)
		if seqList.Hash() != parList.Hash() {
			t.Fatalf("seq %d: parallel list hash diverged", seq)
		}
	}
	sh, ph := seqList.BucketHashes(), parList.BucketHashes()
	for i := range sh {
		if sh[i] != ph[i] {
			t.Fatalf("bucket %d hash diverged", i)
		}
	}
	sl, pl := seqList.AllLive(), parList.AllLive()
	if len(sl) != len(pl) {
		t.Fatalf("live sets differ: %d vs %d", len(sl), len(pl))
	}
	for i := range sl {
		if sl[i].Key != pl[i].Key || string(sl[i].Data) != string(pl[i].Data) {
			t.Fatalf("live entry %d differs", i)
		}
	}
}
