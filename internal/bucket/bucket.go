// Package bucket implements the bucket list of paper §5.1: the ledger
// snapshot is stratified by time of last modification into exponentially
// sized buckets, similar to an LSM-tree, so that each ledger close only
// rehashes the small, recently changed buckets while the hash of the whole
// ledger state stays well defined (Fig 3's snapshot hash).
//
// Because the bucket list is not read during transaction processing, the
// usual LSM design constraints are relaxed: there is no random access by
// key on the hot path, and buckets are only read sequentially while
// merging levels or reconciling state after a disconnection.
package bucket

import (
	"fmt"
	"sort"

	"stellar/internal/ledger"
	"stellar/internal/stellarcrypto"
	"stellar/internal/verify"
	"stellar/internal/xdr"
)

// Entry is one ledger entry in canonical encoded form; a nil Data is a
// tombstone recording a deletion.
type Entry = ledger.SnapshotEntry

// Bucket is an immutable, key-sorted set of entries with a content hash.
type Bucket struct {
	entries []Entry
	hash    stellarcrypto.Hash
}

// NewBucket builds a bucket from entries (which must not contain duplicate
// keys; they will be sorted).
func NewBucket(entries []Entry) *Bucket {
	es := append([]Entry(nil), entries...)
	sort.Slice(es, func(i, j int) bool { return es[i].Key < es[j].Key })
	b := &Bucket{entries: es}
	b.rehash()
	return b
}

var emptyBucket = NewBucket(nil)

// EmptyBucket returns the canonical empty bucket.
func EmptyBucket() *Bucket { return emptyBucket }

func (b *Bucket) rehash() {
	e := xdr.NewEncoder(64 * len(b.entries))
	for _, entry := range b.entries {
		e.PutString(entry.Key)
		if entry.Data == nil {
			e.PutBool(false)
		} else {
			e.PutBool(true)
			e.PutBytes(entry.Data)
		}
	}
	b.hash = stellarcrypto.HashBytes(e.Bytes())
}

// Hash returns the bucket's content hash.
func (b *Bucket) Hash() stellarcrypto.Hash { return b.hash }

// Len returns the number of entries (tombstones included).
func (b *Bucket) Len() int { return len(b.entries) }

// Empty reports whether the bucket holds no entries.
func (b *Bucket) Empty() bool { return len(b.entries) == 0 }

// Entries exposes the sorted entries; callers must not mutate them.
func (b *Bucket) Entries() []Entry { return b.entries }

// Get looks up a key, reporting (entry, found). Binary search; used only
// by reconciliation and state restore, never transaction processing.
func (b *Bucket) Get(key string) (Entry, bool) {
	i := sort.Search(len(b.entries), func(i int) bool { return b.entries[i].Key >= key })
	if i < len(b.entries) && b.entries[i].Key == key {
		return b.entries[i], true
	}
	return Entry{}, false
}

// Merge combines newer onto older: for duplicate keys the newer entry
// shadows the older one. When keepTombstones is false (merging into the
// bottom level), deletions annihilate entirely.
func Merge(newer, older *Bucket, keepTombstones bool) *Bucket {
	out := make([]Entry, 0, len(newer.entries)+len(older.entries))
	i, j := 0, 0
	for i < len(newer.entries) || j < len(older.entries) {
		var e Entry
		switch {
		case j >= len(older.entries):
			e = newer.entries[i]
			i++
		case i >= len(newer.entries):
			e = older.entries[j]
			j++
		case newer.entries[i].Key < older.entries[j].Key:
			e = newer.entries[i]
			i++
		case newer.entries[i].Key > older.entries[j].Key:
			e = older.entries[j]
			j++
		default: // same key: newer shadows older
			e = newer.entries[i]
			i++
			j++
		}
		if e.Data == nil && !keepTombstones {
			continue
		}
		out = append(out, e)
	}
	b := &Bucket{entries: out}
	b.rehash()
	return b
}

// NumLevels is the depth of the bucket list. With fanout 4 and two buckets
// per level, level i covers ~2·4^i ledgers; 9 levels span ~10^5 ledgers of
// history compression, ample for simulation scales.
const NumLevels = 9

// level holds the two buckets of one level: curr accumulates recent spills
// and snap awaits the next spill to the level below.
type level struct {
	curr *Bucket
	snap *Bucket
}

// List is the bucket list: one level pair per exponential age band, plus
// the running list hash (a small, fixed index of bucket hashes re-hashed
// at each ledger close, §5.1).
type List struct {
	levels [NumLevels]level
	hash   stellarcrypto.Hash

	// pool, when set, runs a close's independent spill merges (and their
	// SHA-256 rehashes) concurrently. The resulting buckets and list hash
	// are identical either way; only wall-clock time changes.
	pool *verify.Pool
}

// NewList creates an empty bucket list.
func NewList() *List {
	l := &List{}
	for i := range l.levels {
		l.levels[i] = level{curr: emptyBucket, snap: emptyBucket}
	}
	l.rehash()
	return l
}

// half returns the spill period of a level in ledgers.
func half(i int) uint32 {
	h := uint32(2)
	for ; i > 0; i-- {
		h *= 4
	}
	return h
}

// SetPool attaches a worker pool for parallel spill merges; nil restores
// the sequential path.
func (l *List) SetPool(p *verify.Pool) { l.pool = p }

// AddBatch ingests the entries changed by ledger ledgerSeq, spilling
// levels whose period has elapsed, and recomputes the cumulative hash.
//
// The sequential formulation spills from the deepest level upward, each
// spill merging level i's snap onto level i+1's curr. Those merges are
// in fact independent: half(i) divides half(i+1), so the spilling levels
// form a contiguous prefix 0..k, and when level i spills into a level
// i+1 that itself spills, the sequential loop (descending i) has already
// emptied level i+1's curr — so each merge's inputs are the ORIGINAL
// snap of level i plus either the original curr of level i+1 or the
// empty bucket. No merge reads another merge's output. AddBatch exploits
// that: it captures every job's inputs up front, runs the jobs (on the
// pool when attached), then installs results exactly as the sequential
// loop would. Buckets are immutable once built, so sharing them across
// jobs is safe.
func (l *List) AddBatch(ledgerSeq uint32, changed []Entry) {
	var spills [NumLevels]bool
	for i := 0; i <= NumLevels-2; i++ {
		spills[i] = ledgerSeq%half(i) == 0
	}

	merged := make([]*Bucket, NumLevels) // merged[i]: result of level i's spill
	var ingested *Bucket                 // level-0 ingest of the changed entries
	var jobs []func()
	for i := NumLevels - 2; i >= 0; i-- {
		if !spills[i] {
			continue
		}
		i := i
		newer := l.levels[i].snap
		older := l.levels[i+1].curr
		if spills[i+1] {
			older = emptyBucket
		}
		keepTombstones := i+1 < NumLevels-1
		jobs = append(jobs, func() { merged[i] = Merge(newer, older, keepTombstones) })
	}
	{
		older := l.levels[0].curr
		if spills[0] {
			older = emptyBucket
		}
		jobs = append(jobs, func() { ingested = Merge(NewBucket(changed), older, true) })
	}
	if l.pool != nil && l.pool.Workers() > 1 && len(jobs) > 1 {
		l.pool.Run(len(jobs), func(i int) { jobs[i]() })
	} else {
		for _, job := range jobs {
			job()
		}
	}

	// Install phase: the structural rotation of the sequential loop.
	for i := NumLevels - 2; i >= 0; i-- {
		if !spills[i] {
			continue
		}
		l.levels[i+1].curr = merged[i]
		l.levels[i].snap = l.levels[i].curr
		l.levels[i].curr = emptyBucket
	}
	l.levels[0].curr = ingested
	l.rehash()
}

// rehash recomputes the cumulative list hash from the per-bucket hashes.
func (l *List) rehash() {
	e := xdr.NewEncoder(NumLevels * 64)
	for i := range l.levels {
		h := l.levels[i].curr.Hash()
		e.PutFixed(h[:])
		h = l.levels[i].snap.Hash()
		e.PutFixed(h[:])
	}
	l.hash = stellarcrypto.HashBytes(e.Bytes())
}

// Hash returns the snapshot hash over all ledger entries.
func (l *List) Hash() stellarcrypto.Hash { return l.hash }

// BucketHashes returns the 2·NumLevels bucket hashes (curr, snap per
// level), the "small, fixed index of reference hashes" of §5.1.
func (l *List) BucketHashes() []stellarcrypto.Hash {
	out := make([]stellarcrypto.Hash, 0, 2*NumLevels)
	for i := range l.levels {
		out = append(out, l.levels[i].curr.Hash(), l.levels[i].snap.Hash())
	}
	return out
}

// Bucket returns the bucket at (level, snap?) for archival.
func (l *List) Bucket(levelIdx int, snap bool) (*Bucket, error) {
	if levelIdx < 0 || levelIdx >= NumLevels {
		return nil, fmt.Errorf("bucket: level %d out of range", levelIdx)
	}
	if snap {
		return l.levels[levelIdx].snap, nil
	}
	return l.levels[levelIdx].curr, nil
}

// SetBucket installs a bucket (used by reconciliation after downloading a
// differing bucket from a peer or archive).
func (l *List) SetBucket(levelIdx int, snap bool, b *Bucket) error {
	if levelIdx < 0 || levelIdx >= NumLevels {
		return fmt.Errorf("bucket: level %d out of range", levelIdx)
	}
	if snap {
		l.levels[levelIdx].snap = b
	} else {
		l.levels[levelIdx].curr = b
	}
	l.rehash()
	return nil
}

// Get returns the newest version of a key across all levels, reporting
// whether it is live ((entry,true)), deleted, or absent ((_, false)).
func (l *List) Get(key string) (Entry, bool) {
	for i := range l.levels {
		if e, ok := l.levels[i].curr.Get(key); ok {
			return e, e.Data != nil
		}
		if e, ok := l.levels[i].snap.Get(key); ok {
			return e, e.Data != nil
		}
	}
	return Entry{}, false
}

// AllLive returns every live entry, newest version winning, sorted by key.
// Used to restore full ledger state from an archived bucket list.
func (l *List) AllLive() []Entry {
	seen := make(map[string]struct{})
	var out []Entry
	scan := func(b *Bucket) {
		for _, e := range b.Entries() {
			if _, dup := seen[e.Key]; dup {
				continue
			}
			seen[e.Key] = struct{}{}
			if e.Data != nil {
				out = append(out, e)
			}
		}
	}
	for i := range l.levels {
		scan(l.levels[i].curr)
		scan(l.levels[i].snap)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out
}

// TotalEntries counts entries across all buckets (tombstones included),
// a measure of bucket merge workload (experiment E3's overhead driver).
func (l *List) TotalEntries() int {
	n := 0
	for i := range l.levels {
		n += l.levels[i].curr.Len() + l.levels[i].snap.Len()
	}
	return n
}

// DiffHashes compares two bucket-hash indexes and returns the positions
// that differ — reconciliation after disconnection downloads only those
// buckets (§5.1).
func DiffHashes(a, b []stellarcrypto.Hash) []int {
	var out []int
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			out = append(out, i)
		}
	}
	for i := n; i < len(a) || i < len(b); i++ {
		out = append(out, i)
	}
	return out
}
