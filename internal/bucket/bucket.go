// Package bucket implements the bucket list of paper §5.1: the ledger
// snapshot is stratified by time of last modification into exponentially
// sized buckets, similar to an LSM-tree, so that each ledger close only
// rehashes the small, recently changed buckets while the hash of the whole
// ledger state stays well defined (Fig 3's snapshot hash).
//
// Because the bucket list is not read during transaction processing, the
// usual LSM design constraints are relaxed: there is no random access by
// key on the hot path, and buckets are only read sequentially while
// merging levels or reconciling state after a disconnection.
package bucket

import (
	"fmt"
	"io"
	"sort"

	"stellar/internal/ledger"
	"stellar/internal/stellarcrypto"
	"stellar/internal/verify"
	"stellar/internal/xdr"
)

// Entry is one ledger entry in canonical encoded form; a nil Data is a
// tombstone recording a deletion.
type Entry = ledger.SnapshotEntry

// Bucket is an immutable, key-sorted set of entries with a content hash.
type Bucket struct {
	entries []Entry
	hash    stellarcrypto.Hash
}

// NewBucket builds a bucket from entries (which must not contain duplicate
// keys; they will be sorted).
func NewBucket(entries []Entry) *Bucket {
	es := append([]Entry(nil), entries...)
	sort.Slice(es, func(i, j int) bool { return es[i].Key < es[j].Key })
	b := &Bucket{entries: es}
	b.rehash()
	return b
}

var emptyBucket = NewBucket(nil)

// EmptyBucket returns the canonical empty bucket.
func EmptyBucket() *Bucket { return emptyBucket }

func (b *Bucket) rehash() {
	e := xdr.NewEncoder(64 * len(b.entries))
	for _, entry := range b.entries {
		AppendEntryEncoding(e, entry)
	}
	b.hash = stellarcrypto.HashBytes(e.Bytes())
}

// Hash returns the bucket's content hash.
func (b *Bucket) Hash() stellarcrypto.Hash { return b.hash }

// Len returns the number of entries (tombstones included).
func (b *Bucket) Len() int { return len(b.entries) }

// Empty reports whether the bucket holds no entries.
func (b *Bucket) Empty() bool { return len(b.entries) == 0 }

// Entries exposes the sorted entries; callers must not mutate them.
func (b *Bucket) Entries() []Entry { return b.entries }

// Get looks up a key, reporting (entry, found). Binary search; used only
// by reconciliation and state restore, never transaction processing.
func (b *Bucket) Get(key string) (Entry, bool) {
	i := sort.Search(len(b.entries), func(i int) bool { return b.entries[i].Key >= key })
	if i < len(b.entries) && b.entries[i].Key == key {
		return b.entries[i], true
	}
	return Entry{}, false
}

// Merge combines newer onto older: for duplicate keys the newer entry
// shadows the older one. When keepTombstones is false (merging into the
// bottom level), deletions annihilate entirely.
func Merge(newer, older *Bucket, keepTombstones bool) *Bucket {
	out := make([]Entry, 0, len(newer.entries)+len(older.entries))
	i, j := 0, 0
	for i < len(newer.entries) || j < len(older.entries) {
		var e Entry
		switch {
		case j >= len(older.entries):
			e = newer.entries[i]
			i++
		case i >= len(newer.entries):
			e = older.entries[j]
			j++
		case newer.entries[i].Key < older.entries[j].Key:
			e = newer.entries[i]
			i++
		case newer.entries[i].Key > older.entries[j].Key:
			e = older.entries[j]
			j++
		default: // same key: newer shadows older
			e = newer.entries[i]
			i++
			j++
		}
		if e.Data == nil && !keepTombstones {
			continue
		}
		out = append(out, e)
	}
	b := &Bucket{entries: out}
	b.rehash()
	return b
}

// NumLevels is the depth of the bucket list. With fanout 4 and two buckets
// per level, level i covers ~2·4^i ledgers; 9 levels span ~10^5 ledgers of
// history compression, ample for simulation scales.
const NumLevels = 9

// slot is one bucket position of a level. A resident slot holds the
// decoded bucket in mem; a spilled slot holds only the content hash and
// entry count, with the bytes living in the attached Store. Hash and
// count are always valid, so the list hash and spill scheduling never
// need the store.
type slot struct {
	mem  *Bucket
	hash stellarcrypto.Hash
	n    int
}

func memSlot(b *Bucket) slot { return slot{mem: b, hash: b.Hash(), n: b.Len()} }

// level holds the two buckets of one level: curr accumulates recent spills
// and snap awaits the next spill to the level below.
type level struct {
	curr slot
	snap slot
}

// List is the bucket list: one level pair per exponential age band, plus
// the running list hash (a small, fixed index of bucket hashes re-hashed
// at each ledger close, §5.1).
type List struct {
	levels [NumLevels]level
	hash   stellarcrypto.Hash

	// store and spillLevel select disk-backed operation (SetStore): slots
	// at levels ≥ spillLevel live in the store as content-addressed files
	// and merges into them stream, so deep levels never materialize in
	// memory. Hashes are byte-identical to the all-resident path.
	store      Store
	spillLevel int

	// pool, when set, runs a close's independent spill merges (and their
	// SHA-256 rehashes) concurrently. The resulting buckets and list hash
	// are identical either way; only wall-clock time changes.
	pool *verify.Pool
}

// NewList creates an empty bucket list.
func NewList() *List {
	l := &List{}
	for i := range l.levels {
		l.levels[i] = level{curr: memSlot(emptyBucket), snap: memSlot(emptyBucket)}
	}
	l.rehash()
	return l
}

// DefaultSpillLevel is where disk residency starts when SetStore is not
// told otherwise: levels 0–1 (the per-ledger working set) stay in memory,
// everything deeper lives in the store.
const DefaultSpillLevel = 2

// SetStore attaches a bucket store and migrates every non-empty bucket at
// levels ≥ spillLevel into it, freeing their memory. spillLevel ≤ 0
// selects DefaultSpillLevel; level 0 can never spill (its ingest merge is
// the hot path). The list hash is unchanged: residency is invisible to
// hashing.
func (l *List) SetStore(s Store, spillLevel int) error {
	if spillLevel <= 0 {
		spillLevel = DefaultSpillLevel
	}
	if spillLevel < 1 || spillLevel > NumLevels {
		return fmt.Errorf("bucket: spill level %d out of range [1,%d]", spillLevel, NumLevels)
	}
	l.store = s
	l.spillLevel = spillLevel
	for i := spillLevel; i < NumLevels; i++ {
		for _, sl := range []*slot{&l.levels[i].curr, &l.levels[i].snap} {
			if sl.mem == nil || sl.mem.Empty() {
				continue
			}
			if err := s.Put(sl.mem); err != nil {
				return fmt.Errorf("bucket: spill level %d: %w", i, err)
			}
			sl.mem = nil
		}
	}
	return nil
}

// Store returns the attached bucket store (nil when fully in-memory).
func (l *List) Store() Store { return l.store }

// spilled reports whether a slot installed at the given level should live
// in the store rather than in memory.
func (l *List) spilledLevel(i int) bool {
	return l.store != nil && i >= l.spillLevel
}

// slotReader streams one slot's entries wherever they live.
func (l *List) slotReader(s slot) (EntryReader, error) {
	if s.mem != nil {
		return NewSliceReader(s.mem.Entries()), nil
	}
	return l.store.Reader(s.hash)
}

// slotBucket materializes one slot's bucket.
func (l *List) slotBucket(s slot) (*Bucket, error) {
	if s.mem != nil {
		return s.mem, nil
	}
	return l.store.Load(s.hash)
}

// mustBucket is slotBucket for the internal paths with no error channel
// (Get, AllLive). A store read failing means the node's own durable state
// is unreadable — there is no useful way to continue, so it panics, like
// an I/O error inside a database engine's page read.
func (l *List) mustBucket(s slot) *Bucket {
	b, err := l.slotBucket(s)
	if err != nil {
		panic(fmt.Sprintf("bucket: reading spilled bucket %s: %v", s.hash.Hex(), err))
	}
	return b
}

// half returns the spill period of a level in ledgers.
func half(i int) uint32 {
	h := uint32(2)
	for ; i > 0; i-- {
		h *= 4
	}
	return h
}

// SetPool attaches a worker pool for parallel spill merges; nil restores
// the sequential path.
func (l *List) SetPool(p *verify.Pool) { l.pool = p }

// AddBatch ingests the entries changed by ledger ledgerSeq, spilling
// levels whose period has elapsed, and recomputes the cumulative hash.
//
// The sequential formulation spills from the deepest level upward, each
// spill merging level i's snap onto level i+1's curr. Those merges are
// in fact independent: half(i) divides half(i+1), so the spilling levels
// form a contiguous prefix 0..k, and when level i spills into a level
// i+1 that itself spills, the sequential loop (descending i) has already
// emptied level i+1's curr — so each merge's inputs are the ORIGINAL
// snap of level i plus either the original curr of level i+1 or the
// empty bucket. No merge reads another merge's output. AddBatch exploits
// that: it captures every job's inputs up front, runs the jobs (on the
// pool when attached), then installs results exactly as the sequential
// loop would. Buckets are immutable once built, so sharing them across
// jobs is safe.
func (l *List) AddBatch(ledgerSeq uint32, changed []Entry) {
	var spills [NumLevels]bool
	for i := 0; i <= NumLevels-2; i++ {
		spills[i] = ledgerSeq%half(i) == 0
	}

	merged := make([]slot, NumLevels) // merged[i]: result of level i's spill
	var ingested slot                 // level-0 ingest of the changed entries
	var jobs []func() error
	for i := NumLevels - 2; i >= 0; i-- {
		if !spills[i] {
			continue
		}
		i := i
		newer := l.levels[i].snap
		older := l.levels[i+1].curr
		if spills[i+1] {
			older = memSlot(emptyBucket)
		}
		keepTombstones := i+1 < NumLevels-1
		if l.spilledLevel(i + 1) {
			// Deep-level merge: stream both inputs through the store's
			// writer so the output never materializes in memory. The
			// incremental hash over the canonical entry encodings equals
			// the in-memory Merge+rehash result by construction.
			jobs = append(jobs, func() error {
				s, err := l.mergeToStore(newer, older, keepTombstones)
				if err != nil {
					return fmt.Errorf("level %d spill: %w", i, err)
				}
				merged[i] = s
				return nil
			})
			continue
		}
		jobs = append(jobs, func() error {
			merged[i] = memSlot(Merge(newer.mem, older.mem, keepTombstones))
			return nil
		})
	}
	{
		older := l.levels[0].curr
		if spills[0] {
			older = memSlot(emptyBucket)
		}
		jobs = append(jobs, func() error {
			ingested = memSlot(Merge(NewBucket(changed), older.mem, true))
			return nil
		})
	}
	errs := make([]error, len(jobs))
	if l.pool != nil && l.pool.Workers() > 1 && len(jobs) > 1 {
		l.pool.Run(len(jobs), func(i int) { errs[i] = jobs[i]() })
	} else {
		for i, job := range jobs {
			errs[i] = job()
		}
	}
	for _, err := range errs {
		if err != nil {
			// The bucket list is consensus state: failing to persist a
			// spill means this node can no longer compute the snapshot
			// hash it is about to vote on. Nothing to do but stop.
			panic(fmt.Sprintf("bucket: AddBatch ledger %d: %v", ledgerSeq, err))
		}
	}

	// Install phase: the structural rotation of the sequential loop.
	for i := NumLevels - 2; i >= 0; i-- {
		if !spills[i] {
			continue
		}
		l.levels[i+1].curr = merged[i]
		l.levels[i].snap = l.levels[i].curr
		l.levels[i].curr = memSlot(emptyBucket)
	}
	l.levels[0].curr = ingested
	l.rehash()
}

// mergeToStore streams a spill merge into the store, returning the
// resulting slot. Empty results stay resident as the canonical empty
// bucket (whose hash a zero-entry stream also produces) so no file is
// written for them.
func (l *List) mergeToStore(newer, older slot, keepTombstones bool) (slot, error) {
	nr, err := l.slotReader(newer)
	if err != nil {
		return slot{}, err
	}
	defer nr.Close()
	or, err := l.slotReader(older)
	if err != nil {
		return slot{}, err
	}
	defer or.Close()
	w := l.store.Writer()
	if err := MergeStreams(nr, or, keepTombstones, w); err != nil {
		w.Abort()
		return slot{}, err
	}
	h, n, err := w.Commit()
	if err != nil {
		return slot{}, err
	}
	if n == 0 {
		return memSlot(emptyBucket), nil
	}
	return slot{hash: h, n: n}, nil
}

// rehash recomputes the cumulative list hash from the per-bucket hashes.
func (l *List) rehash() {
	e := xdr.NewEncoder(NumLevels * 64)
	for i := range l.levels {
		e.PutFixed(l.levels[i].curr.hash[:])
		e.PutFixed(l.levels[i].snap.hash[:])
	}
	l.hash = stellarcrypto.HashBytes(e.Bytes())
}

// Hash returns the snapshot hash over all ledger entries.
func (l *List) Hash() stellarcrypto.Hash { return l.hash }

// BucketHashes returns the 2·NumLevels bucket hashes (curr, snap per
// level), the "small, fixed index of reference hashes" of §5.1.
func (l *List) BucketHashes() []stellarcrypto.Hash {
	out := make([]stellarcrypto.Hash, 0, 2*NumLevels)
	for i := range l.levels {
		out = append(out, l.levels[i].curr.hash, l.levels[i].snap.hash)
	}
	return out
}

// Bucket returns the bucket at (level, snap?) for archival, loading it
// from the store when the level is spilled.
func (l *List) Bucket(levelIdx int, snap bool) (*Bucket, error) {
	if levelIdx < 0 || levelIdx >= NumLevels {
		return nil, fmt.Errorf("bucket: level %d out of range", levelIdx)
	}
	if snap {
		return l.slotBucket(l.levels[levelIdx].snap)
	}
	return l.slotBucket(l.levels[levelIdx].curr)
}

// SetBucket installs a bucket (used by reconciliation after downloading a
// differing bucket from a peer or archive). On a disk-backed list the
// bucket is persisted and dropped from memory when its level is spilled.
func (l *List) SetBucket(levelIdx int, snap bool, b *Bucket) error {
	if levelIdx < 0 || levelIdx >= NumLevels {
		return fmt.Errorf("bucket: level %d out of range", levelIdx)
	}
	s := memSlot(b)
	if l.spilledLevel(levelIdx) && !b.Empty() {
		if err := l.store.Put(b); err != nil {
			return err
		}
		s.mem = nil
	}
	if snap {
		l.levels[levelIdx].snap = s
	} else {
		l.levels[levelIdx].curr = s
	}
	l.rehash()
	return nil
}

// Get returns the newest version of a key across all levels, reporting
// whether it is live ((entry,true)), deleted, or absent ((_, false)).
// Spilled buckets are loaded through the store's cache; Get stays off the
// transaction hot path (reconciliation and tests only).
func (l *List) Get(key string) (Entry, bool) {
	for i := range l.levels {
		if e, ok := l.mustBucket(l.levels[i].curr).Get(key); ok {
			return e, e.Data != nil
		}
		if e, ok := l.mustBucket(l.levels[i].snap).Get(key); ok {
			return e, e.Data != nil
		}
	}
	return Entry{}, false
}

// AllLive returns every live entry, newest version winning, sorted by key.
// Used to restore full ledger state from an archived bucket list. Spilled
// buckets are streamed, so peak memory is the live set plus one bucket's
// read buffer — not the sum of all levels.
func (l *List) AllLive() []Entry {
	seen := make(map[string]struct{})
	var out []Entry
	scan := func(s slot) {
		r, err := l.slotReader(s)
		if err != nil {
			panic(fmt.Sprintf("bucket: reading spilled bucket %s: %v", s.hash.Hex(), err))
		}
		defer r.Close()
		for {
			e, err := r.Next()
			if err == io.EOF {
				return
			}
			if err != nil {
				panic(fmt.Sprintf("bucket: reading spilled bucket %s: %v", s.hash.Hex(), err))
			}
			if _, dup := seen[e.Key]; dup {
				continue
			}
			seen[e.Key] = struct{}{}
			if e.Data != nil {
				out = append(out, e)
			}
		}
	}
	for i := range l.levels {
		scan(l.levels[i].curr)
		scan(l.levels[i].snap)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out
}

// TotalEntries counts entries across all buckets (tombstones included),
// a measure of bucket merge workload (experiment E3's overhead driver).
func (l *List) TotalEntries() int {
	n := 0
	for i := range l.levels {
		n += l.levels[i].curr.n + l.levels[i].snap.n
	}
	return n
}

// DiffHashes compares two bucket-hash indexes and returns the positions
// that differ — reconciliation after disconnection downloads only those
// buckets (§5.1).
func DiffHashes(a, b []stellarcrypto.Hash) []int {
	var out []int
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			out = append(out, i)
		}
	}
	for i := n; i < len(a) || i < len(b); i++ {
		out = append(out, i)
	}
	return out
}
