//go:build race

package disk_test

// raceEnabled shrinks the large-ledger memory test under the race
// detector, whose shadow memory would otherwise dominate both the runtime
// and the heap measurement.
const raceEnabled = true
