// Package disk implements the disk-backed bucket.Store: buckets are
// immutable and content-addressed (§5.1 — "essentially an LSM-tree"), so
// each one is a single append-only file named by its hash. Files are
// written streamingly (a million-entry merge never materializes in
// memory), framed with a whole-file checksum, and read back through
// chunked sequential readers; a small LRU keeps hot decoded buckets.
//
// The on-disk format is
//
//	magic "STLRBKT1" ‖ sha256(payload) ‖ payload
//	payload = version u32 ‖ entry encodings ‖ count u32
//
// where each entry encoding is bucket.AppendEntryEncoding's canonical
// form — exactly the unit the bucket content hash is defined over. The
// bucket hash is therefore sha256 of the entry region, computable
// incrementally while writing, and byte-identical to the in-memory
// Bucket.Hash() by construction. The entry count rides as a trailer, not
// a header, so a single forward pass suffices to write the file.
package disk

import (
	"bufio"
	"bytes"
	"container/list"
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"hash"
	"io"
	"os"
	"path/filepath"
	"strings"
	"sync"

	"stellar/internal/bucket"
	"stellar/internal/stellarcrypto"
)

// Magic identifies a bucket file.
const Magic = "STLRBKT1"

// formatVersion is the payload version this package writes.
const formatVersion = 1

// headerLen is the byte offset where the payload begins.
const headerLen = len(Magic) + sha256.Size

// DefaultCacheBytes bounds the decoded-bucket LRU (approximate bytes).
const DefaultCacheBytes = 64 << 20

// readBufferSize is the chunk size of streaming reads.
const readBufferSize = 256 << 10

// maxFieldLen bounds a single key or entry payload while decoding, so a
// corrupt length prefix cannot demand an absurd allocation.
const maxFieldLen = 64 << 20

// Store is a directory of content-addressed bucket files.
type Store struct {
	dir string

	mu       sync.Mutex
	cache    map[stellarcrypto.Hash]*list.Element
	order    *list.List // front = most recent
	cacheB   int64
	maxCache int64
}

type cacheEntry struct {
	hash  stellarcrypto.Hash
	b     *bucket.Bucket
	bytes int64
}

// Open creates (if necessary) and opens a store rooted at dir, sweeping
// any temp files a crash left behind.
func Open(dir string) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("disk: create store: %w", err)
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("disk: open store: %w", err)
	}
	for _, e := range ents {
		if strings.HasPrefix(e.Name(), tmpPrefix) {
			_ = os.Remove(filepath.Join(dir, e.Name()))
		}
	}
	return &Store{
		dir:      dir,
		cache:    make(map[stellarcrypto.Hash]*list.Element),
		order:    list.New(),
		maxCache: DefaultCacheBytes,
	}, nil
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

// SetCacheBytes bounds the decoded-bucket LRU; ≤ 0 disables caching.
func (s *Store) SetCacheBytes(n int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.maxCache = n
	s.evictLocked()
}

// Path returns the file path a bucket hash maps to.
func (s *Store) Path(h stellarcrypto.Hash) string {
	return filepath.Join(s.dir, h.Hex()+".bucket")
}

// Has reports whether the bucket file exists.
func (s *Store) Has(h stellarcrypto.Hash) bool {
	_, err := os.Stat(s.Path(h))
	return err == nil
}

// Put persists a decoded bucket; a no-op when the file already exists.
func (s *Store) Put(b *bucket.Bucket) error {
	if s.Has(b.Hash()) {
		return nil
	}
	w := s.Writer()
	for _, e := range b.Entries() {
		if err := w.Append(e); err != nil {
			w.Abort()
			return err
		}
	}
	h, _, err := w.Commit()
	if err != nil {
		return err
	}
	if !b.Empty() && h != b.Hash() {
		return fmt.Errorf("disk: wrote bucket %s but content hashed to %s", b.Hash().Hex(), h.Hex())
	}
	return nil
}

// Load returns the decoded bucket, via the LRU when hot.
func (s *Store) Load(h stellarcrypto.Hash) (*bucket.Bucket, error) {
	if b := s.cacheGet(h); b != nil {
		return b, nil
	}
	r, err := s.Reader(h)
	if err != nil {
		return nil, err
	}
	defer r.Close()
	var entries []bucket.Entry
	for {
		e, err := r.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
		entries = append(entries, e)
	}
	b := bucket.NewBucket(entries)
	if b.Hash() != h {
		// The streaming reader already verified the content hash; this
		// re-check guards the decode→rebuild round trip itself.
		return nil, fmt.Errorf("disk: bucket %s decoded to hash %s", h.Hex(), b.Hash().Hex())
	}
	s.cachePut(h, b)
	return b, nil
}

func (s *Store) cacheGet(h stellarcrypto.Hash) *bucket.Bucket {
	s.mu.Lock()
	defer s.mu.Unlock()
	el, ok := s.cache[h]
	if !ok {
		return nil
	}
	s.order.MoveToFront(el)
	return el.Value.(*cacheEntry).b
}

func (s *Store) cachePut(h stellarcrypto.Hash, b *bucket.Bucket) {
	size := int64(32)
	for _, e := range b.Entries() {
		size += int64(len(e.Key) + len(e.Data) + 48)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.maxCache <= 0 || size > s.maxCache {
		return
	}
	if el, ok := s.cache[h]; ok {
		s.order.MoveToFront(el)
		return
	}
	s.cache[h] = s.order.PushFront(&cacheEntry{hash: h, b: b, bytes: size})
	s.cacheB += size
	s.evictLocked()
}

func (s *Store) evictLocked() {
	for s.cacheB > s.maxCache && s.order.Len() > 0 {
		el := s.order.Back()
		ce := el.Value.(*cacheEntry)
		s.order.Remove(el)
		delete(s.cache, ce.hash)
		s.cacheB -= ce.bytes
	}
}

// CacheBytes reports the LRU's current approximate size (tests).
func (s *Store) CacheBytes() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.cacheB
}

const tmpPrefix = ".tmp-bucket-"

// Writer starts streaming a new bucket file.
func (s *Store) Writer() bucket.BucketWriter {
	return &fileWriter{store: s}
}

type fileWriter struct {
	store   *Store
	f       *os.File
	bw      *bufio.Writer
	fileSum hash.Hash // over the whole payload
	content hash.Hash // over the entry region only (the bucket hash)
	enc     entryEncoder
	count   int
	lastKey string
	err     error
}

// entryEncoder reuses one buffer for per-entry canonical encodings.
type entryEncoder struct{ buf []byte }

func (ee *entryEncoder) encode(e bucket.Entry) []byte {
	ee.buf = ee.buf[:0]
	ee.buf = binary.BigEndian.AppendUint32(ee.buf, uint32(len(e.Key)))
	ee.buf = append(ee.buf, e.Key...)
	for pad := (4 - len(e.Key)%4) % 4; pad > 0; pad-- {
		ee.buf = append(ee.buf, 0)
	}
	if e.Data == nil {
		ee.buf = binary.BigEndian.AppendUint32(ee.buf, 0)
	} else {
		ee.buf = binary.BigEndian.AppendUint32(ee.buf, 1)
		ee.buf = binary.BigEndian.AppendUint32(ee.buf, uint32(len(e.Data)))
		ee.buf = append(ee.buf, e.Data...)
		for pad := (4 - len(e.Data)%4) % 4; pad > 0; pad-- {
			ee.buf = append(ee.buf, 0)
		}
	}
	return ee.buf
}

func (w *fileWriter) lazyInit() error {
	if w.f != nil || w.err != nil {
		return w.err
	}
	f, err := os.CreateTemp(w.store.dir, tmpPrefix+"*")
	if err != nil {
		w.err = fmt.Errorf("disk: create bucket temp: %w", err)
		return w.err
	}
	w.f = f
	w.bw = bufio.NewWriterSize(f, readBufferSize)
	w.fileSum = sha256.New()
	w.content = sha256.New()
	var hdr [headerLen]byte
	copy(hdr[:], Magic) // checksum bytes stay zero until Commit patches them
	if _, err := w.bw.Write(hdr[:]); err != nil {
		w.fail(err)
		return w.err
	}
	var ver [4]byte
	binary.BigEndian.PutUint32(ver[:], formatVersion)
	if _, err := w.bw.Write(ver[:]); err != nil {
		w.fail(err)
		return w.err
	}
	w.fileSum.Write(ver[:])
	return nil
}

func (w *fileWriter) fail(err error) {
	if w.err == nil {
		w.err = fmt.Errorf("disk: write bucket: %w", err)
	}
	if w.f != nil {
		name := w.f.Name()
		w.f.Close()
		_ = os.Remove(name)
		w.f = nil
	}
}

func (w *fileWriter) Append(e bucket.Entry) error {
	if err := w.lazyInit(); err != nil {
		return err
	}
	if w.count > 0 && e.Key <= w.lastKey {
		err := fmt.Errorf("disk: writer keys out of order (%q after %q)", e.Key, w.lastKey)
		w.fail(err)
		return w.err
	}
	enc := w.enc.encode(e)
	if _, err := w.bw.Write(enc); err != nil {
		w.fail(err)
		return w.err
	}
	w.fileSum.Write(enc)
	w.content.Write(enc)
	w.count++
	w.lastKey = e.Key
	return nil
}

func (w *fileWriter) Commit() (stellarcrypto.Hash, int, error) {
	if err := w.lazyInit(); err != nil {
		return stellarcrypto.Hash{}, 0, err
	}
	if w.count == 0 {
		// The canonical empty bucket stays purely in memory; a zero-entry
		// stream hashes to its hash with no file written.
		name := w.f.Name()
		w.f.Close()
		_ = os.Remove(name)
		w.f = nil
		return bucket.EmptyBucket().Hash(), 0, nil
	}
	var trailer [4]byte
	binary.BigEndian.PutUint32(trailer[:], uint32(w.count))
	if _, err := w.bw.Write(trailer[:]); err != nil {
		w.fail(err)
		return stellarcrypto.Hash{}, 0, w.err
	}
	w.fileSum.Write(trailer[:])
	if err := w.bw.Flush(); err != nil {
		w.fail(err)
		return stellarcrypto.Hash{}, 0, w.err
	}
	if _, err := w.f.WriteAt(w.fileSum.Sum(nil), int64(len(Magic))); err != nil {
		w.fail(err)
		return stellarcrypto.Hash{}, 0, w.err
	}
	if err := w.f.Sync(); err != nil {
		w.fail(err)
		return stellarcrypto.Hash{}, 0, w.err
	}
	var h stellarcrypto.Hash
	copy(h[:], w.content.Sum(nil))
	tmp := w.f.Name()
	if err := w.f.Close(); err != nil {
		_ = os.Remove(tmp)
		w.err = fmt.Errorf("disk: close bucket temp: %w", err)
		return stellarcrypto.Hash{}, 0, w.err
	}
	w.f = nil
	if err := renameAndSyncDir(tmp, w.store.Path(h), w.store.dir); err != nil {
		w.err = err
		return stellarcrypto.Hash{}, 0, w.err
	}
	return h, w.count, nil
}

func (w *fileWriter) Abort() {
	if w.f != nil {
		name := w.f.Name()
		w.f.Close()
		_ = os.Remove(name)
		w.f = nil
	}
}

// renameAndSyncDir atomically installs tmp at path and fsyncs the parent
// directory, so a crash can never leave a half-written or unnamed file.
func renameAndSyncDir(tmp, path, dir string) error {
	if err := os.Rename(tmp, path); err != nil {
		_ = os.Remove(tmp)
		return fmt.Errorf("disk: rename bucket: %w", err)
	}
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("disk: open dir for sync: %w", err)
	}
	defer d.Close()
	if err := d.Sync(); err != nil {
		return fmt.Errorf("disk: sync dir: %w", err)
	}
	return nil
}

// Reader opens a chunked streaming reader over the bucket's entries,
// verifying the file checksum and content hash incrementally; the final
// Next returns an error instead of io.EOF if either fails.
func (s *Store) Reader(h stellarcrypto.Hash) (bucket.EntryReader, error) {
	f, err := os.Open(s.Path(h))
	if err != nil {
		return nil, fmt.Errorf("disk: bucket %s: %w", h.Hex(), err)
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("disk: bucket %s: %w", h.Hex(), err)
	}
	r := &fileReader{
		f:       f,
		br:      bufio.NewReaderSize(f, readBufferSize),
		want:    h,
		size:    st.Size(),
		fileSum: sha256.New(),
		content: sha256.New(),
	}
	if err := r.readHeader(); err != nil {
		f.Close()
		return nil, err
	}
	return r, nil
}

type fileReader struct {
	f       *os.File
	br      *bufio.Reader
	want    stellarcrypto.Hash
	size    int64
	pos     int64 // absolute file offset consumed so far
	stored  [sha256.Size]byte
	fileSum hash.Hash
	content hash.Hash
	count   int
	done    bool
	err     error
}

func (r *fileReader) corrupt(format string, args ...any) error {
	r.err = fmt.Errorf("disk: bucket %s: corrupted or truncated file: %s",
		r.want.Hex(), fmt.Sprintf(format, args...))
	return r.err
}

// readRaw consumes n bytes without hashing (the file header).
func (r *fileReader) readRaw(buf []byte) error {
	if _, err := io.ReadFull(r.br, buf); err != nil {
		return r.corrupt("%v", err)
	}
	r.pos += int64(len(buf))
	return nil
}

// readPayload consumes n bytes of payload, feeding the file checksum and
// (when inContent) the content hash.
func (r *fileReader) readPayload(buf []byte, inContent bool) error {
	if _, err := io.ReadFull(r.br, buf); err != nil {
		return r.corrupt("%v", err)
	}
	r.fileSum.Write(buf)
	if inContent {
		r.content.Write(buf)
	}
	r.pos += int64(len(buf))
	return nil
}

func (r *fileReader) readHeader() error {
	if r.size < int64(headerLen)+8 { // header + version + count trailer
		return r.corrupt("%d bytes is too short", r.size)
	}
	var hdr [headerLen]byte
	if err := r.readRaw(hdr[:]); err != nil {
		return err
	}
	if string(hdr[:len(Magic)]) != Magic {
		return r.corrupt("bad magic")
	}
	copy(r.stored[:], hdr[len(Magic):])
	var ver [4]byte
	if err := r.readPayload(ver[:], false); err != nil {
		return err
	}
	if v := binary.BigEndian.Uint32(ver[:]); v != formatVersion {
		return r.corrupt("unsupported version %d", v)
	}
	return nil
}

// entriesEnd is the file offset where the entry region stops (the count
// trailer begins).
func (r *fileReader) entriesEnd() int64 { return r.size - 4 }

func (r *fileReader) u32(inContent bool) (uint32, error) {
	var b [4]byte
	if err := r.readPayload(b[:], inContent); err != nil {
		return 0, err
	}
	return binary.BigEndian.Uint32(b[:]), nil
}

func (r *fileReader) opaque(n uint32) ([]byte, error) {
	if n > maxFieldLen {
		return nil, r.corrupt("field length %d too large", n)
	}
	padded := int64(n) + int64((4-n%4)%4)
	if r.pos+padded > r.entriesEnd() {
		return nil, r.corrupt("field runs past entry region")
	}
	buf := make([]byte, padded)
	if err := r.readPayload(buf, true); err != nil {
		return nil, err
	}
	for _, p := range buf[n:] {
		if p != 0 {
			return nil, r.corrupt("nonzero padding")
		}
	}
	return buf[:n], nil
}

func (r *fileReader) Next() (bucket.Entry, error) {
	if r.err != nil {
		return bucket.Entry{}, r.err
	}
	if r.done {
		return bucket.Entry{}, io.EOF
	}
	if r.pos >= r.entriesEnd() {
		return bucket.Entry{}, r.finish()
	}
	klen, err := r.u32(true)
	if err != nil {
		return bucket.Entry{}, err
	}
	key, err := r.opaque(klen)
	if err != nil {
		return bucket.Entry{}, err
	}
	present, err := r.u32(true)
	if err != nil {
		return bucket.Entry{}, err
	}
	e := bucket.Entry{Key: string(key)}
	switch present {
	case 0:
	case 1:
		dlen, err := r.u32(true)
		if err != nil {
			return bucket.Entry{}, err
		}
		if e.Data, err = r.opaque(dlen); err != nil {
			return bucket.Entry{}, err
		}
		if e.Data == nil {
			e.Data = []byte{} // a present empty payload is not a tombstone
		}
	default:
		return bucket.Entry{}, r.corrupt("bad presence flag %d", present)
	}
	r.count++
	return e, nil
}

// finish verifies the trailer, checksum, and content hash, then reports
// io.EOF. Any mismatch surfaces as an error so a consumer can never
// mistake a corrupt bucket for a complete one.
func (r *fileReader) finish() error {
	count, err := r.u32(false)
	if err != nil {
		return err
	}
	if int(count) != r.count {
		return r.corrupt("trailer count %d, read %d entries", count, r.count)
	}
	if !bytes.Equal(r.fileSum.Sum(nil), r.stored[:]) {
		return r.corrupt("checksum mismatch")
	}
	var got stellarcrypto.Hash
	copy(got[:], r.content.Sum(nil))
	if got != r.want {
		return r.corrupt("content hash %s", got.Hex())
	}
	r.done = true
	return io.EOF
}

func (r *fileReader) Close() error { return r.f.Close() }

// Adopt verifies the bucket file at src (written outside the store, e.g.
// fetched over the network) and installs it under its content hash.
func (s *Store) Adopt(src string, h stellarcrypto.Hash) error {
	f, err := os.Open(src)
	if err != nil {
		return fmt.Errorf("disk: adopt bucket: %w", err)
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return fmt.Errorf("disk: adopt bucket: %w", err)
	}
	r := &fileReader{
		f:       f,
		br:      bufio.NewReaderSize(f, readBufferSize),
		want:    h,
		size:    st.Size(),
		fileSum: sha256.New(),
		content: sha256.New(),
	}
	if err := r.readHeader(); err != nil {
		f.Close()
		return err
	}
	for {
		if _, err := r.Next(); err == io.EOF {
			break
		} else if err != nil {
			f.Close()
			return err
		}
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("disk: adopt bucket: %w", err)
	}
	f.Close()
	return renameAndSyncDir(src, s.Path(h), s.dir)
}
