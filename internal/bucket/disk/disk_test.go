package disk_test

import (
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"testing"

	"stellar/internal/bucket"
	"stellar/internal/bucket/disk"
)

func e(key, val string) bucket.Entry {
	if val == "" {
		return bucket.Entry{Key: key, Data: nil}
	}
	return bucket.Entry{Key: key, Data: []byte(val)}
}

func TestStoreRoundTrip(t *testing.T) {
	s, err := disk.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	b := bucket.NewBucket([]bucket.Entry{
		e("a|1", "hello"), e("a|2", ""), {Key: "a|3", Data: []byte{}},
	})
	if err := s.Put(b); err != nil {
		t.Fatal(err)
	}
	if !s.Has(b.Hash()) {
		t.Fatal("Has reports stored bucket missing")
	}
	got, err := s.Load(b.Hash())
	if err != nil {
		t.Fatal(err)
	}
	if got.Hash() != b.Hash() {
		t.Fatalf("round trip changed hash: %s vs %s", got.Hash().Hex(), b.Hash().Hex())
	}
	ents := got.Entries()
	if len(ents) != 3 {
		t.Fatalf("got %d entries", len(ents))
	}
	if ents[1].Data != nil {
		t.Fatal("tombstone came back with data")
	}
	if ents[2].Data == nil || len(ents[2].Data) != 0 {
		t.Fatal("present-empty entry not preserved")
	}
	// Streaming read agrees with the decoded bucket.
	r, err := s.Reader(b.Hash())
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	for i := 0; ; i++ {
		en, err := r.Next()
		if err != nil {
			if err.Error() != "EOF" {
				t.Fatalf("stream error: %v", err)
			}
			if i != 3 {
				t.Fatalf("stream ended after %d entries", i)
			}
			break
		}
		if en.Key != ents[i].Key {
			t.Fatalf("stream entry %d key %q, want %q", i, en.Key, ents[i].Key)
		}
	}
}

func TestEmptyBucketNeedsNoFile(t *testing.T) {
	dir := t.TempDir()
	s, err := disk.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	w := s.Writer()
	h, n, err := w.Commit()
	if err != nil {
		t.Fatal(err)
	}
	if n != 0 || h != bucket.EmptyBucket().Hash() {
		t.Fatalf("empty commit: n=%d hash=%s", n, h.Hex())
	}
	files, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(files) != 0 {
		t.Fatalf("empty bucket left %d files on disk", len(files))
	}
}

func TestCorruptFileRejected(t *testing.T) {
	s, err := disk.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	s.SetCacheBytes(0) // force every Load to hit the file
	var ents []bucket.Entry
	for i := 0; i < 50; i++ {
		ents = append(ents, e(fmt.Sprintf("k|%03d", i), fmt.Sprintf("v%d", i)))
	}
	b := bucket.NewBucket(ents)
	if err := s.Put(b); err != nil {
		t.Fatal(err)
	}
	path := s.Path(b.Hash())
	orig, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, i := range []int{0, 8, 20, len(orig) / 2, len(orig) - 3, len(orig) - 1} {
		mut := append([]byte(nil), orig...)
		mut[i] ^= 0x01
		if err := os.WriteFile(path, mut, 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := s.Load(b.Hash()); err == nil {
			t.Errorf("byte %d flipped: Load succeeded", i)
		}
	}
	// Truncations at a few points must fail too.
	for _, n := range []int{0, 7, 8, 40, len(orig) / 2, len(orig) - 1} {
		if err := os.WriteFile(path, orig[:n], 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := s.Load(b.Hash()); err == nil {
			t.Errorf("truncated to %d bytes: Load succeeded", n)
		}
	}
	if err := os.WriteFile(path, orig, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Load(b.Hash()); err != nil {
		t.Fatalf("restored file unreadable: %v", err)
	}
}

func TestAdopt(t *testing.T) {
	srcStore, err := disk.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	dstStore, err := disk.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	b := bucket.NewBucket([]bucket.Entry{e("x|1", "one"), e("x|2", "two")})
	if err := srcStore.Put(b); err != nil {
		t.Fatal(err)
	}
	// Simulate a network fetch: copy the raw file somewhere, adopt it.
	raw, err := os.ReadFile(srcStore.Path(b.Hash()))
	if err != nil {
		t.Fatal(err)
	}
	part := filepath.Join(t.TempDir(), "fetched.part")
	if err := os.WriteFile(part, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := dstStore.Adopt(part, b.Hash()); err != nil {
		t.Fatal(err)
	}
	got, err := dstStore.Load(b.Hash())
	if err != nil || got.Hash() != b.Hash() {
		t.Fatalf("adopted bucket unreadable: %v", err)
	}
	// A tampered fetch must be refused and must not land in the store.
	other := bucket.NewBucket([]bucket.Entry{e("y|1", "evil")})
	if err := srcStore.Put(other); err != nil {
		t.Fatal(err)
	}
	raw, _ = os.ReadFile(srcStore.Path(other.Hash()))
	part2 := filepath.Join(t.TempDir(), "lie.part")
	if err := os.WriteFile(part2, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	wrong := bucket.NewBucket([]bucket.Entry{e("z|1", "claimed")}).Hash()
	if err := dstStore.Adopt(part2, wrong); err == nil {
		t.Fatal("adopt accepted a bucket whose content does not match its claimed hash")
	}
	if dstStore.Has(wrong) {
		t.Fatal("refused bucket still landed in the store")
	}
}

func TestLRUBounded(t *testing.T) {
	s, err := disk.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	s.SetCacheBytes(16 << 10)
	var hashes []bucket.Entry
	_ = hashes
	for i := 0; i < 20; i++ {
		var ents []bucket.Entry
		for j := 0; j < 10; j++ {
			ents = append(ents, e(fmt.Sprintf("k|%d-%d", i, j), strings.Repeat("x", 100)))
		}
		b := bucket.NewBucket(ents)
		if err := s.Put(b); err != nil {
			t.Fatal(err)
		}
		if _, err := s.Load(b.Hash()); err != nil {
			t.Fatal(err)
		}
		if cb := s.CacheBytes(); cb > 16<<10 {
			t.Fatalf("cache grew to %d bytes, cap 16KiB", cb)
		}
	}
}

// TestDiskMemoryHashEquivalence drives an in-memory list, a MemStore-backed
// list, and a disk-backed list through the same 50 random pipeline
// histories and requires byte-identical level hashes, list hashes, and
// live state at every ledger. This is the property the whole durable-state
// design rests on: where a bucket lives must never leak into what the
// network agrees on.
func TestDiskMemoryHashEquivalence(t *testing.T) {
	seeds := 50
	if testing.Short() {
		seeds = 8
	}
	for seed := 0; seed < seeds; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%02d", seed), func(t *testing.T) {
			t.Parallel()
			rng := rand.New(rand.NewSource(int64(seed) * 7919))
			plain := bucket.NewList()
			mem := bucket.NewList()
			if err := mem.SetStore(bucket.NewMemStore(), 1); err != nil {
				t.Fatal(err)
			}
			diskStore, err := disk.Open(t.TempDir())
			if err != nil {
				t.Fatal(err)
			}
			diskStore.SetCacheBytes(4 << 10) // tiny cache: exercise real file reads
			onDisk := bucket.NewList()
			if err := onDisk.SetStore(diskStore, 1+rng.Intn(3)); err != nil {
				t.Fatal(err)
			}
			ledgers := 60 + rng.Intn(80)
			for seq := uint32(1); seq <= uint32(ledgers); seq++ {
				n := 1 + rng.Intn(8)
				seen := map[string]bool{}
				var batch []bucket.Entry
				for len(batch) < n {
					key := fmt.Sprintf("a|%04d", rng.Intn(200))
					if seen[key] {
						continue
					}
					seen[key] = true
					if rng.Intn(10) == 0 {
						batch = append(batch, e(key, "")) // tombstone
					} else if rng.Intn(20) == 0 {
						batch = append(batch, bucket.Entry{Key: key, Data: []byte{}})
					} else {
						batch = append(batch, e(key, fmt.Sprintf("v%d", rng.Int63())))
					}
				}
				bucket.SortEntries(batch)
				plain.AddBatch(seq, batch)
				mem.AddBatch(seq, batch)
				onDisk.AddBatch(seq, batch)
				if ph, dh := plain.Hash(), onDisk.Hash(); ph != dh {
					t.Fatalf("seq %d: disk list hash %s, in-memory %s", seq, dh.Hex(), ph.Hex())
				}
				if plain.Hash() != mem.Hash() {
					t.Fatalf("seq %d: memstore list hash diverged", seq)
				}
			}
			ph, dh := plain.BucketHashes(), onDisk.BucketHashes()
			for i := range ph {
				if ph[i] != dh[i] {
					t.Fatalf("bucket %d: disk hash %s, memory %s", i, dh[i].Hex(), ph[i].Hex())
				}
			}
			pl, dl := plain.AllLive(), onDisk.AllLive()
			if len(pl) != len(dl) {
				t.Fatalf("live sets differ: %d vs %d", len(pl), len(dl))
			}
			for i := range pl {
				if pl[i].Key != dl[i].Key || string(pl[i].Data) != string(dl[i].Data) {
					t.Fatalf("live entry %d differs", i)
				}
			}
			if plain.TotalEntries() != onDisk.TotalEntries() {
				t.Fatalf("entry counts differ: %d vs %d", plain.TotalEntries(), onDisk.TotalEntries())
			}
		})
	}
}

// TestBoundedMemoryLargeLedger builds a ledger of ~1M accounts through a
// disk-backed list and asserts the live heap stays far below what holding
// the state in memory would need. Under -short (and thus under -race in
// CI's quick loops) a smaller ledger keeps the test snappy.
func TestBoundedMemoryLargeLedger(t *testing.T) {
	entries, perBatch := 1_000_000, 10_000
	budget := uint64(128 << 20) // in-memory the data alone would need >160 MB
	if testing.Short() || raceEnabled {
		entries, perBatch = 100_000, 4000
	}
	s, err := disk.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	s.SetCacheBytes(8 << 20)
	l := bucket.NewList()
	if err := l.SetStore(s, 1); err != nil {
		t.Fatal(err)
	}
	payload := strings.Repeat("p", 128)
	var peak uint64
	sample := func() {
		runtime.GC()
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		if ms.HeapAlloc > peak {
			peak = ms.HeapAlloc
		}
	}
	seq := uint32(1)
	for done := 0; done < entries; done += perBatch {
		batch := make([]bucket.Entry, 0, perBatch)
		for j := 0; j < perBatch; j++ {
			batch = append(batch, e(fmt.Sprintf("a|%09d", done+j), payload))
		}
		l.AddBatch(seq, batch)
		seq++
		if seq%16 == 0 {
			sample()
		}
	}
	sample()
	if got := l.TotalEntries(); got != entries {
		t.Fatalf("list holds %d entries, want %d", got, entries)
	}
	if peak > budget {
		t.Fatalf("peak live heap %d MiB exceeds budget %d MiB",
			peak>>20, budget>>20)
	}
	t.Logf("%d entries, peak live heap %d MiB (budget %d MiB)", entries, peak>>20, budget>>20)
}
