//go:build !race

package disk_test

const raceEnabled = false
