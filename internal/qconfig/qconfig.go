// Package qconfig implements the simplified quorum-configuration mechanism
// of paper §6.1 (Figure 6): operators list organizations with a trust
// quality label instead of hand-writing nested quorum sets, and the
// synthesizer produces the nested sets — each organization a 51% threshold
// set of its validators, organizations grouped by quality into 67% (or, for
// critical, 100%) threshold sets, with each group a single entry in the
// next higher-quality group. This reduces the misconfiguration surface that
// caused the §6 outage.
package qconfig

import (
	"fmt"
	"sort"

	"stellar/internal/fba"
)

// Quality is the trust classification of an organization (§6.1).
type Quality int

// Quality levels, lowest to highest.
const (
	Low Quality = iota
	Medium
	High
	Critical
)

// String names the quality.
func (q Quality) String() string {
	switch q {
	case Low:
		return "low"
	case Medium:
		return "medium"
	case High:
		return "high"
	case Critical:
		return "critical"
	default:
		return fmt.Sprintf("Quality(%d)", int(q))
	}
}

// ParseQuality parses a quality label.
func ParseQuality(s string) (Quality, error) {
	switch s {
	case "low":
		return Low, nil
	case "medium":
		return Medium, nil
	case "high":
		return High, nil
	case "critical":
		return Critical, nil
	default:
		return 0, fmt.Errorf("qconfig: unknown quality %q", s)
	}
}

// Organization describes one operator: its validators and quality label.
type Organization struct {
	Name       string
	Quality    Quality
	Validators []fba.NodeID
}

// Config is a full network description in the simplified model.
type Config struct {
	Orgs []Organization
}

// Validate applies the structural rules: non-empty orgs, unique validator
// IDs, and the §6.1 requirement that high-and-above organizations run
// enough validators to tolerate one failure (≥3).
func (c *Config) Validate() error {
	if len(c.Orgs) == 0 {
		return fmt.Errorf("qconfig: no organizations")
	}
	seen := map[fba.NodeID]string{}
	names := map[string]bool{}
	for _, org := range c.Orgs {
		if org.Name == "" {
			return fmt.Errorf("qconfig: organization with empty name")
		}
		if names[org.Name] {
			return fmt.Errorf("qconfig: duplicate organization %q", org.Name)
		}
		names[org.Name] = true
		if len(org.Validators) == 0 {
			return fmt.Errorf("qconfig: organization %q has no validators", org.Name)
		}
		if org.Quality >= High && len(org.Validators) < 3 {
			return fmt.Errorf("qconfig: %s-quality organization %q runs %d validators, need ≥3",
				org.Quality, org.Name, len(org.Validators))
		}
		for _, v := range org.Validators {
			if prev, dup := seen[v]; dup {
				return fmt.Errorf("qconfig: validator %s in both %q and %q", v, prev, org.Name)
			}
			seen[v] = org.Name
		}
	}
	return nil
}

// orgSet builds an organization's 51%-threshold inner quorum set. A
// single-validator org degenerates to the validator itself being required.
func orgSet(org Organization) fba.QuorumSet {
	vs := append([]fba.NodeID(nil), org.Validators...)
	sort.Slice(vs, func(i, j int) bool { return vs[i] < vs[j] })
	return fba.QuorumSet{
		Threshold:  fba.PercentThreshold(len(vs), 51),
		Validators: vs,
	}
}

// Synthesize produces the nested quorum set every validator should use,
// following Figure 6: quality groups from critical down to low, each group
// a 51%-per-org set with a 67% (100% for critical) group threshold, and
// each group a single entry of the group above it.
func (c *Config) Synthesize() (fba.QuorumSet, error) {
	if err := c.Validate(); err != nil {
		return fba.QuorumSet{}, err
	}
	byQuality := map[Quality][]Organization{}
	for _, org := range c.Orgs {
		byQuality[org.Quality] = append(byQuality[org.Quality], org)
	}
	for _, orgs := range byQuality {
		sort.Slice(orgs, func(i, j int) bool { return orgs[i].Name < orgs[j].Name })
	}

	var group *fba.QuorumSet // group synthesized so far (lower qualities)
	for _, q := range []Quality{Low, Medium, High, Critical} {
		orgs := byQuality[q]
		if len(orgs) == 0 {
			continue
		}
		var entries []fba.QuorumSet
		for _, org := range orgs {
			entries = append(entries, orgSet(org))
		}
		if group != nil {
			entries = append(entries, *group)
		}
		pct := 67
		if q == Critical {
			pct = 100
		}
		g := fba.QuorumSet{
			Threshold: fba.PercentThreshold(len(entries), pct),
			InnerSets: entries,
		}
		group = &g
	}
	if group == nil {
		return fba.QuorumSet{}, fmt.Errorf("qconfig: nothing to synthesize")
	}
	if err := group.Validate(); err != nil {
		return fba.QuorumSet{}, fmt.Errorf("qconfig: synthesized set invalid: %w", err)
	}
	return *group, nil
}

// QuorumSets assigns the synthesized quorum set to every validator in the
// configuration, producing the system map consumed by the checker and the
// simulator.
func (c *Config) QuorumSets() (fba.QuorumSets, error) {
	qs, err := c.Synthesize()
	if err != nil {
		return nil, err
	}
	out := make(fba.QuorumSets)
	for _, org := range c.Orgs {
		for _, v := range org.Validators {
			q := qs
			out[v] = &q
		}
	}
	return out, nil
}

// AllValidators lists every validator in the configuration, sorted.
func (c *Config) AllValidators() []fba.NodeID {
	var out []fba.NodeID
	for _, org := range c.Orgs {
		out = append(out, org.Validators...)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// SimulatedNetwork builds a Config shaped like the production topology of
// §7.2: nOrgs tier-one organizations with validatorsPerOrg validators each,
// named "<org>-<i>".
func SimulatedNetwork(nOrgs, validatorsPerOrg int, quality Quality) Config {
	var cfg Config
	for o := 0; o < nOrgs; o++ {
		org := Organization{
			Name:    fmt.Sprintf("org%02d", o),
			Quality: quality,
		}
		for v := 0; v < validatorsPerOrg; v++ {
			org.Validators = append(org.Validators,
				fba.NodeID(fmt.Sprintf("org%02d-%d", o, v)))
		}
		cfg.Orgs = append(cfg.Orgs, org)
	}
	return cfg
}
