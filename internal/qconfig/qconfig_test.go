package qconfig

import (
	"testing"

	"stellar/internal/fba"
)

func org(name string, q Quality, n int) Organization {
	o := Organization{Name: name, Quality: q}
	for i := 0; i < n; i++ {
		o.Validators = append(o.Validators, fba.NodeID(name+"-"+string(rune('0'+i))))
	}
	return o
}

func TestValidateRules(t *testing.T) {
	cases := []struct {
		name string
		cfg  Config
		ok   bool
	}{
		{"empty", Config{}, false},
		{"one low org", Config{Orgs: []Organization{org("a", Low, 1)}}, true},
		{"high org too small", Config{Orgs: []Organization{org("a", High, 2)}}, false},
		{"high org ok", Config{Orgs: []Organization{org("a", High, 3)}}, true},
		{"critical org too small", Config{Orgs: []Organization{org("a", Critical, 1)}}, false},
		{"dup org", Config{Orgs: []Organization{org("a", Low, 1), org("a", Low, 1)}}, false},
		{"no validators", Config{Orgs: []Organization{{Name: "a", Quality: Low}}}, false},
		{"dup validator", Config{Orgs: []Organization{
			{Name: "a", Quality: Low, Validators: []fba.NodeID{"x"}},
			{Name: "b", Quality: Low, Validators: []fba.NodeID{"x"}},
		}}, false},
	}
	for _, c := range cases {
		err := c.cfg.Validate()
		if (err == nil) != c.ok {
			t.Errorf("%s: Validate() = %v, want ok=%v", c.name, err, c.ok)
		}
	}
}

func TestSynthesizeSingleTier(t *testing.T) {
	cfg := Config{Orgs: []Organization{
		org("a", High, 3), org("b", High, 3), org("c", High, 3),
	}}
	qs, err := cfg.Synthesize()
	if err != nil {
		t.Fatal(err)
	}
	// 67% of 3 orgs = 3 (strict supermajority convention).
	if qs.Threshold != 3 {
		t.Fatalf("outer threshold = %d, want 3", qs.Threshold)
	}
	if len(qs.InnerSets) != 3 {
		t.Fatalf("inner sets = %d", len(qs.InnerSets))
	}
	for _, in := range qs.InnerSets {
		if in.Threshold != 2 || len(in.Validators) != 3 {
			t.Fatalf("org set = %s, want 2-of-3", in.String())
		}
	}
}

func TestSynthesizeFiveOrgs(t *testing.T) {
	cfg := SimulatedNetwork(5, 3, High)
	qs, err := cfg.Synthesize()
	if err != nil {
		t.Fatal(err)
	}
	// 67% of 5 = 4.
	if qs.Threshold != 4 {
		t.Fatalf("threshold = %d, want 4", qs.Threshold)
	}
	if err := qs.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestSynthesizeTiers(t *testing.T) {
	cfg := Config{Orgs: []Organization{
		org("crit1", Critical, 3), org("crit2", Critical, 3),
		org("high1", High, 3),
		org("med1", Medium, 1), org("med2", Medium, 1),
		org("low1", Low, 1),
	}}
	qs, err := cfg.Synthesize()
	if err != nil {
		t.Fatal(err)
	}
	// Top group: critical at 100%: entries = 2 critical orgs + high group.
	if qs.Threshold != 3 || len(qs.InnerSets) != 3 {
		t.Fatalf("critical group = %d-of-%d", qs.Threshold, len(qs.InnerSets))
	}
	// The nested chain must mention every validator.
	members := qs.Members()
	want := len(cfg.AllValidators())
	if len(members) != want {
		t.Fatalf("synthesized set covers %d validators, want %d", len(members), want)
	}
}

func TestSynthesizeDeterministic(t *testing.T) {
	cfg := SimulatedNetwork(4, 3, High)
	a, err := cfg.Synthesize()
	if err != nil {
		t.Fatal(err)
	}
	b, _ := cfg.Synthesize()
	if a.Hash() != b.Hash() {
		t.Fatal("synthesis not deterministic")
	}
}

func TestQuorumSetsAssignsAll(t *testing.T) {
	cfg := SimulatedNetwork(3, 3, Medium)
	qs, err := cfg.QuorumSets()
	if err != nil {
		t.Fatal(err)
	}
	if len(qs) != 9 {
		t.Fatalf("%d validators, want 9", len(qs))
	}
	for id, q := range qs {
		if !q.Members().Has(id) {
			t.Fatalf("validator %s missing from own quorum set", id)
		}
	}
}

func TestQuorumSetsIsQuorumBehaviour(t *testing.T) {
	// With 5 orgs at 67% (threshold 4) and 51% per org (2 of 3): any 4
	// full orgs form a quorum; 3 orgs do not.
	cfg := SimulatedNetwork(5, 3, High)
	qs, err := cfg.QuorumSets()
	if err != nil {
		t.Fatal(err)
	}
	fourOrgs := fba.NewNodeSet()
	for o := 0; o < 4; o++ {
		for v := 0; v < 3; v++ {
			fourOrgs.Add(cfg.Orgs[o].Validators[v])
		}
	}
	if !fba.IsQuorum(fourOrgs, qs) {
		t.Fatal("4 of 5 orgs should be a quorum")
	}
	threeOrgs := fba.NewNodeSet()
	for o := 0; o < 3; o++ {
		for v := 0; v < 3; v++ {
			threeOrgs.Add(cfg.Orgs[o].Validators[v])
		}
	}
	if fba.IsQuorum(threeOrgs, qs) {
		t.Fatal("3 of 5 orgs should not be a quorum")
	}
}

func TestParseQuality(t *testing.T) {
	for _, s := range []string{"low", "medium", "high", "critical"} {
		q, err := ParseQuality(s)
		if err != nil || q.String() != s {
			t.Fatalf("ParseQuality(%q) = %v, %v", s, q, err)
		}
	}
	if _, err := ParseQuality("bogus"); err == nil {
		t.Fatal("bogus quality parsed")
	}
}

func TestSimulatedNetworkShape(t *testing.T) {
	cfg := SimulatedNetwork(7, 3, High)
	if len(cfg.Orgs) != 7 {
		t.Fatalf("orgs = %d", len(cfg.Orgs))
	}
	if len(cfg.AllValidators()) != 21 {
		t.Fatalf("validators = %d", len(cfg.AllValidators()))
	}
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
}
