// Package simnet is a deterministic discrete-event network simulator. The
// paper's controlled experiments (§7.3) ran up to 43 validators on EC2; this
// simulator lets a laptop reproduce the same runs by modelling message
// latency with a virtual clock while node handlers execute as real code.
//
// The simulation is single-threaded and fully deterministic for a given
// seed: events (message deliveries and timer firings) are processed in
// virtual-time order, with ties broken by scheduling order. Node handlers
// run synchronously and may send further messages or set timers, which are
// queued as future events.
package simnet

import (
	"container/heap"
	"fmt"
	"math/rand"
	"time"
)

// Addr identifies a host. On the simulated network it is an arbitrary
// label; real transports use the validator's node ID (its public key
// address), so the same value addresses a peer on either backend.
type Addr string

// Env is the node-facing surface of a network environment: sending
// messages, scheduling timers, and reading the clock. The discrete-event
// simulator implements it with a virtual clock; the TCP overlay transport
// (internal/transport) implements it with the wall clock and real
// connections. Nodes written against Env run unchanged on either backend.
type Env interface {
	// Now returns the environment's current time. The simulator's clock
	// starts at zero; real-time environments may anchor it to the Unix
	// epoch so that independent processes agree on close times.
	Now() time.Duration
	// After schedules fn to run at now+d on behalf of owner, returning a
	// cancellable handle.
	After(owner Addr, d time.Duration, fn func()) *Timer
	// Defer schedules fn to run immediately after the current event
	// completes (breaks re-entrancy).
	Defer(fn func())
	// Send transmits msg from one node to another; size approximates the
	// wire size for bandwidth accounting.
	Send(from, to Addr, msg any, size int)
	// AddNode registers a host's message handler.
	AddNode(addr Addr, h Handler)
}

// Handler receives messages delivered to a node.
type Handler interface {
	// HandleMessage is invoked when a message arrives. size is the wire
	// size in bytes used for bandwidth accounting.
	HandleMessage(from Addr, msg any, size int)
}

// HandlerFunc adapts a function to the Handler interface.
type HandlerFunc func(from Addr, msg any, size int)

// HandleMessage implements Handler.
func (f HandlerFunc) HandleMessage(from Addr, msg any, size int) { f(from, msg, size) }

// LatencyModel computes one-way delivery latency for a message.
type LatencyModel func(from, to Addr, rng *rand.Rand) time.Duration

// ConstantLatency returns a model with fixed one-way latency.
func ConstantLatency(d time.Duration) LatencyModel {
	return func(from, to Addr, rng *rand.Rand) time.Duration { return d }
}

// UniformLatency returns a model with latency uniform in [min, max].
func UniformLatency(min, max time.Duration) LatencyModel {
	if max < min {
		min, max = max, min
	}
	return func(from, to Addr, rng *rand.Rand) time.Duration {
		if max == min {
			return min
		}
		return min + time.Duration(rng.Int63n(int64(max-min)))
	}
}

// event is a scheduled occurrence: either a message delivery or a timer.
type event struct {
	at      time.Duration
	seq     uint64 // tie-break: FIFO among same-time events
	deliver func()
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}

// Stats accumulates network-wide counters. MessagesDropped is the total;
// the Dropped* fields break it down by cause so fault-injection tests can
// verify the accounting (a message lost to a partition must show up under
// DroppedCut, not vanish).
type Stats struct {
	MessagesSent      uint64
	MessagesDelivered uint64
	MessagesDropped   uint64
	BytesDelivered    uint64
	TimersFired       uint64

	// Drop causes; they sum to MessagesDropped.
	DroppedDown   uint64 // sender or receiver crashed
	DroppedCut    uint64 // link partitioned (at send or while in flight)
	DroppedLoss   uint64 // random loss (global or per-link drop rate)
	DroppedNoDest uint64 // destination never registered
}

// Network is a simulated network of nodes joined by latency-modelled links.
type Network struct {
	now      time.Duration
	seq      uint64
	queue    eventHeap
	rng      *rand.Rand
	nodes    map[Addr]Handler
	latency  LatencyModel
	dropRate float64
	linkDrop map[[2]Addr]float64
	downed   map[Addr]bool
	cut      map[[2]Addr]bool
	stats    Stats

	// PerNode tracks per-destination delivered bytes for bandwidth
	// accounting (experiment E8).
	perNodeBytes map[Addr]uint64

	// procCost models receiver-side CPU per message (signature checks,
	// protocol processing): each node is a busy server that handles one
	// message at a time, so deliveries queue behind earlier ones. Zero
	// disables the model.
	procCost  time.Duration
	busyUntil map[Addr]time.Duration
}

var _ Env = (*Network)(nil)

// New creates an empty network with the given deterministic seed and a
// default constant 1 ms latency.
func New(seed int64) *Network {
	return &Network{
		rng:          rand.New(rand.NewSource(seed)),
		nodes:        make(map[Addr]Handler),
		latency:      ConstantLatency(time.Millisecond),
		linkDrop:     make(map[[2]Addr]float64),
		downed:       make(map[Addr]bool),
		cut:          make(map[[2]Addr]bool),
		perNodeBytes: make(map[Addr]uint64),
		busyUntil:    make(map[Addr]time.Duration),
	}
}

// SetLatency installs the latency model for subsequent sends. Safe to call
// mid-run (from a fault schedule): messages already in flight keep the
// delay they were assigned at send time.
func (n *Network) SetLatency(m LatencyModel) { n.latency = m }

// Latency returns the current latency model, so fault injectors can wrap
// it for a spike window and restore it afterwards.
func (n *Network) Latency() LatencyModel { return n.latency }

// SetDropRate sets the probability in [0,1) that any message is lost.
// Safe to call mid-run; it applies to subsequent sends only.
func (n *Network) SetDropRate(p float64) { n.dropRate = p }

// DropRate returns the current global loss probability.
func (n *Network) DropRate() float64 { return n.dropRate }

// SetLinkDropRate sets the loss probability for messages from one node to
// another; the higher of the global and per-link rate applies. The link is
// directional, modelling asymmetric degradation (a saturated uplink loses
// outbound traffic while inbound flows fine). p ≤ 0 clears the link's
// extra loss.
func (n *Network) SetLinkDropRate(from, to Addr, p float64) {
	if p <= 0 {
		delete(n.linkDrop, [2]Addr{from, to})
		return
	}
	n.linkDrop[[2]Addr{from, to}] = p
}

// ClearLinkDropRates removes all per-link loss.
func (n *Network) ClearLinkDropRates() { clear(n.linkDrop) }

// SetProcessingCost installs the per-message receiver CPU cost: messages
// arriving while a node is busy queue behind the in-progress one. This is
// how the simulation reproduces the paper's load-dependent latencies
// (Fig 11): protocol structure alone is latency-bound, but real validators
// pay per-message verification and processing time.
func (n *Network) SetProcessingCost(d time.Duration) { n.procCost = d }

// AddNode registers a host. Re-registering an address replaces its handler.
func (n *Network) AddNode(addr Addr, h Handler) {
	n.nodes[addr] = h
}

// Now returns the current virtual time.
func (n *Network) Now() time.Duration { return n.now }

// Rand exposes the deterministic RNG so co-simulated components (load
// generators, fault injectors) share one seed.
func (n *Network) Rand() *rand.Rand { return n.rng }

// Stats returns a copy of the accumulated counters.
func (n *Network) Stats() Stats { return n.stats }

// BytesDeliveredTo reports total bytes delivered to addr.
func (n *Network) BytesDeliveredTo(addr Addr) uint64 { return n.perNodeBytes[addr] }

// SetDown marks a node as crashed: messages to and from it are dropped and
// its timers do not fire. Use SetUp to revive it.
func (n *Network) SetDown(addr Addr) { n.downed[addr] = true }

// SetUp revives a crashed node.
func (n *Network) SetUp(addr Addr) { delete(n.downed, addr) }

// IsDown reports whether the node is marked crashed.
func (n *Network) IsDown(addr Addr) bool { return n.downed[addr] }

// Partition cuts the bidirectional link between a and b. Safe to call
// mid-run: messages in flight on the link when the cut lands are lost
// (deliver re-checks the cut), as on a real network.
func (n *Network) Partition(a, b Addr) {
	n.cut[[2]Addr{a, b}] = true
	n.cut[[2]Addr{b, a}] = true
}

// PartitionGroups cuts every link between nodes of different groups,
// leaving links within a group intact. Nodes absent from every group keep
// all their links.
func (n *Network) PartitionGroups(groups ...[]Addr) {
	for i, g := range groups {
		for _, a := range g {
			for j, h := range groups {
				if i == j {
					continue
				}
				for _, b := range h {
					n.cut[[2]Addr{a, b}] = true
				}
			}
		}
	}
}

// Heal restores the link between a and b.
func (n *Network) Heal(a, b Addr) {
	delete(n.cut, [2]Addr{a, b})
	delete(n.cut, [2]Addr{b, a})
}

// HealAll restores every partitioned link.
func (n *Network) HealAll() { clear(n.cut) }

// dropped records one lost message under its cause counter.
func (n *Network) dropped(cause *uint64) {
	n.stats.MessagesDropped++
	*cause++
}

// Send schedules delivery of msg from one node to another. size should
// approximate the wire size for bandwidth accounting; pass 0 if unknown.
func (n *Network) Send(from, to Addr, msg any, size int) {
	n.stats.MessagesSent++
	if n.downed[from] || n.downed[to] {
		n.dropped(&n.stats.DroppedDown)
		return
	}
	if n.cut[[2]Addr{from, to}] {
		n.dropped(&n.stats.DroppedCut)
		return
	}
	loss := n.dropRate
	if p, ok := n.linkDrop[[2]Addr{from, to}]; ok && p > loss {
		loss = p
	}
	if loss > 0 && n.rng.Float64() < loss {
		n.dropped(&n.stats.DroppedLoss)
		return
	}
	delay := n.latency(from, to, n.rng)
	if delay < 0 {
		delay = 0
	}
	at := n.now + delay
	n.push(at, func() { n.deliver(from, to, msg, size) })
}

// deliver hands a message to its destination, modelling receiver CPU as a
// busy server when a processing cost is configured.
func (n *Network) deliver(from, to Addr, msg any, size int) {
	if n.downed[to] {
		n.dropped(&n.stats.DroppedDown)
		return
	}
	if n.cut[[2]Addr{from, to}] {
		// The link was cut after the message left: in flight, now lost.
		n.dropped(&n.stats.DroppedCut)
		return
	}
	h, ok := n.nodes[to]
	if !ok {
		n.dropped(&n.stats.DroppedNoDest)
		return
	}
	if n.procCost > 0 {
		if busy := n.busyUntil[to]; busy > n.now {
			// Receiver is mid-message: requeue at its free time.
			n.push(busy, func() { n.deliver(from, to, msg, size) })
			return
		}
		n.busyUntil[to] = n.now + n.procCost
	}
	n.stats.MessagesDelivered++
	n.stats.BytesDelivered += uint64(size)
	n.perNodeBytes[to] += uint64(size)
	h.HandleMessage(from, msg, size)
}

// Timer is a cancellable scheduled callback.
type Timer struct {
	cancelled bool
	fired     bool
}

// Cancel prevents the timer from firing; safe after firing.
func (t *Timer) Cancel() { t.cancelled = true }

// Fired reports whether the callback has run.
func (t *Timer) Fired() bool { return t.fired }

// Cancelled reports whether Cancel was called. Exported so other Env
// implementations (internal/transport's real-time loop) can honor
// cancellation of the timers they hand out; all accesses must happen under
// the environment's serialization (the simulator's single thread, or the
// real-time loop's mutex).
func (t *Timer) Cancelled() bool { return t.cancelled }

// MarkFired records that the callback ran, for external Env
// implementations. Same serialization requirement as Cancelled.
func (t *Timer) MarkFired() { t.fired = true }

// After schedules fn to run at now+d on behalf of owner (timers of downed
// nodes are suppressed). It returns a cancellable handle.
func (n *Network) After(owner Addr, d time.Duration, fn func()) *Timer {
	if d < 0 {
		d = 0
	}
	t := &Timer{}
	n.push(n.now+d, func() {
		if t.cancelled || n.downed[owner] {
			return
		}
		t.fired = true
		n.stats.TimersFired++
		fn()
	})
	return t
}

// Defer schedules fn to run immediately after the current event completes,
// still in deterministic order. Useful for breaking re-entrancy.
func (n *Network) Defer(fn func()) {
	n.push(n.now, fn)
}

func (n *Network) push(at time.Duration, fn func()) {
	n.seq++
	heap.Push(&n.queue, &event{at: at, seq: n.seq, deliver: fn})
}

// Step processes the single next event. It reports false when the queue is
// empty.
func (n *Network) Step() bool {
	if n.queue.Len() == 0 {
		return false
	}
	e := heap.Pop(&n.queue).(*event)
	if e.at > n.now {
		n.now = e.at
	}
	e.deliver()
	return true
}

// RunUntil processes events until virtual time exceeds deadline or the queue
// drains. Events at exactly deadline are processed.
func (n *Network) RunUntil(deadline time.Duration) {
	for n.queue.Len() > 0 && n.queue[0].at <= deadline {
		n.Step()
	}
	if n.now < deadline {
		n.now = deadline
	}
}

// RunFor advances virtual time by d.
func (n *Network) RunFor(d time.Duration) { n.RunUntil(n.now + d) }

// RunUntilIdle processes events until none remain or maxEvents is hit,
// returning the number processed. A maxEvents of 0 means no limit.
func (n *Network) RunUntilIdle(maxEvents int) int {
	count := 0
	for n.Step() {
		count++
		if maxEvents > 0 && count >= maxEvents {
			break
		}
	}
	return count
}

// Pending returns the number of queued events.
func (n *Network) Pending() int { return n.queue.Len() }

// String summarizes the network state for debugging.
func (n *Network) String() string {
	return fmt.Sprintf("simnet{t=%v nodes=%d pending=%d sent=%d delivered=%d dropped=%d}",
		n.now, len(n.nodes), n.queue.Len(), n.stats.MessagesSent,
		n.stats.MessagesDelivered, n.stats.MessagesDropped)
}
