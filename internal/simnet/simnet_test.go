package simnet

import (
	"testing"
	"time"
)

type recorder struct {
	msgs  []any
	froms []Addr
}

func (r *recorder) HandleMessage(from Addr, msg any, size int) {
	r.msgs = append(r.msgs, msg)
	r.froms = append(r.froms, from)
}

func TestSendDeliversAfterLatency(t *testing.T) {
	n := New(1)
	r := &recorder{}
	n.AddNode("a", HandlerFunc(func(Addr, any, int) {}))
	n.AddNode("b", r)
	n.SetLatency(ConstantLatency(10 * time.Millisecond))
	n.Send("a", "b", "hello", 5)

	n.RunUntil(5 * time.Millisecond)
	if len(r.msgs) != 0 {
		t.Fatal("message delivered before latency elapsed")
	}
	n.RunUntil(10 * time.Millisecond)
	if len(r.msgs) != 1 || r.msgs[0] != "hello" || r.froms[0] != "a" {
		t.Fatalf("delivery wrong: %v from %v", r.msgs, r.froms)
	}
	if n.Now() != 10*time.Millisecond {
		t.Fatalf("clock = %v", n.Now())
	}
}

func TestDeliveryOrderDeterministic(t *testing.T) {
	run := func() []any {
		n := New(42)
		r := &recorder{}
		n.AddNode("a", HandlerFunc(func(Addr, any, int) {}))
		n.AddNode("b", r)
		n.SetLatency(UniformLatency(time.Millisecond, 20*time.Millisecond))
		for i := 0; i < 50; i++ {
			n.Send("a", "b", i, 1)
		}
		n.RunUntilIdle(0)
		return r.msgs
	}
	a, b := run(), run()
	if len(a) != 50 || len(b) != 50 {
		t.Fatalf("lost messages: %d %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("order differs at %d: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestSameTimeFIFO(t *testing.T) {
	n := New(1)
	r := &recorder{}
	n.AddNode("a", HandlerFunc(func(Addr, any, int) {}))
	n.AddNode("b", r)
	n.SetLatency(ConstantLatency(time.Millisecond))
	for i := 0; i < 10; i++ {
		n.Send("a", "b", i, 0)
	}
	n.RunUntilIdle(0)
	for i, m := range r.msgs {
		if m != i {
			t.Fatalf("FIFO violated: position %d has %v", i, m)
		}
	}
}

func TestTimerFiresAndCancels(t *testing.T) {
	n := New(1)
	n.AddNode("a", HandlerFunc(func(Addr, any, int) {}))
	var fired int
	tm1 := n.After("a", 5*time.Millisecond, func() { fired++ })
	tm2 := n.After("a", 5*time.Millisecond, func() { fired++ })
	tm2.Cancel()
	n.RunUntil(10 * time.Millisecond)
	if fired != 1 {
		t.Fatalf("fired = %d, want 1", fired)
	}
	if !tm1.Fired() || tm2.Fired() {
		t.Fatal("Fired() flags wrong")
	}
}

func TestDownNodeDropsTraffic(t *testing.T) {
	n := New(1)
	r := &recorder{}
	n.AddNode("a", HandlerFunc(func(Addr, any, int) {}))
	n.AddNode("b", r)
	n.SetDown("b")
	n.Send("a", "b", "x", 1)
	n.RunUntilIdle(0)
	if len(r.msgs) != 0 {
		t.Fatal("downed node received message")
	}
	n.SetUp("b")
	n.Send("a", "b", "y", 1)
	n.RunUntilIdle(0)
	if len(r.msgs) != 1 {
		t.Fatal("revived node did not receive")
	}
}

func TestDownNodeTimersSuppressed(t *testing.T) {
	n := New(1)
	n.AddNode("a", HandlerFunc(func(Addr, any, int) {}))
	var fired bool
	n.After("a", time.Millisecond, func() { fired = true })
	n.SetDown("a")
	n.RunUntilIdle(0)
	if fired {
		t.Fatal("timer of downed node fired")
	}
}

func TestInFlightMessageToDownedNodeDropped(t *testing.T) {
	n := New(1)
	r := &recorder{}
	n.AddNode("a", HandlerFunc(func(Addr, any, int) {}))
	n.AddNode("b", r)
	n.SetLatency(ConstantLatency(10 * time.Millisecond))
	n.Send("a", "b", "x", 1)
	n.RunUntil(time.Millisecond)
	n.SetDown("b") // crashes while message in flight
	n.RunUntilIdle(0)
	if len(r.msgs) != 0 {
		t.Fatal("in-flight message delivered to crashed node")
	}
}

func TestPartitionAndHeal(t *testing.T) {
	n := New(1)
	r := &recorder{}
	n.AddNode("a", HandlerFunc(func(Addr, any, int) {}))
	n.AddNode("b", r)
	n.Partition("a", "b")
	n.Send("a", "b", "lost", 1)
	n.RunUntilIdle(0)
	if len(r.msgs) != 0 {
		t.Fatal("partitioned link delivered")
	}
	n.Heal("a", "b")
	n.Send("a", "b", "ok", 1)
	n.RunUntilIdle(0)
	if len(r.msgs) != 1 {
		t.Fatal("healed link did not deliver")
	}
}

func TestPartitionMidRunDropsInFlight(t *testing.T) {
	// A fault schedule cuts the link while a message is in flight: the
	// message must be lost, and accounted as a cut drop.
	n := New(1)
	r := &recorder{}
	n.AddNode("a", HandlerFunc(func(Addr, any, int) {}))
	n.AddNode("b", r)
	n.SetLatency(ConstantLatency(10 * time.Millisecond))
	n.Send("a", "b", "in-flight", 1)
	n.RunUntil(2 * time.Millisecond)
	n.Partition("a", "b")
	n.RunUntilIdle(0)
	if len(r.msgs) != 0 {
		t.Fatal("in-flight message crossed a partition")
	}
	if st := n.Stats(); st.DroppedCut != 1 {
		t.Fatalf("cut drop not accounted: %+v", st)
	}
}

func TestPartitionThenHealAccounting(t *testing.T) {
	// Every message sent must be accounted exactly once: delivered, or
	// dropped under its cause. Exercise the full partition lifecycle.
	n := New(1)
	r := &recorder{}
	n.AddNode("a", HandlerFunc(func(Addr, any, int) {}))
	n.AddNode("b", r)
	n.SetLatency(ConstantLatency(time.Millisecond))

	// Phase 1: healthy traffic.
	for i := 0; i < 5; i++ {
		n.Send("a", "b", i, 1)
	}
	n.RunUntilIdle(0)

	// Phase 2: partitioned traffic is dropped at send time.
	n.Partition("a", "b")
	for i := 0; i < 7; i++ {
		n.Send("a", "b", i, 1)
	}
	n.RunUntilIdle(0)

	// Phase 3: heal mid-run; traffic flows again.
	n.Heal("a", "b")
	for i := 0; i < 3; i++ {
		n.Send("a", "b", i, 1)
	}
	n.RunUntilIdle(0)

	st := n.Stats()
	if len(r.msgs) != 8 {
		t.Fatalf("delivered %d messages, want 8", len(r.msgs))
	}
	if st.MessagesSent != 15 || st.MessagesDelivered != 8 || st.DroppedCut != 7 {
		t.Fatalf("accounting wrong: %+v", st)
	}
	if st.MessagesDelivered+st.MessagesDropped != st.MessagesSent {
		t.Fatalf("counters do not sum: %+v", st)
	}
	if st.DroppedDown+st.DroppedCut+st.DroppedLoss+st.DroppedNoDest != st.MessagesDropped {
		t.Fatalf("drop causes do not sum: %+v", st)
	}
}

func TestPartitionGroupsAndHealAll(t *testing.T) {
	n := New(1)
	var got []string
	for _, a := range []Addr{"a", "b", "c", "d"} {
		a := a
		n.AddNode(a, HandlerFunc(func(from Addr, msg any, _ int) {
			got = append(got, string(from)+string(a))
		}))
	}
	n.PartitionGroups([]Addr{"a", "b"}, []Addr{"c", "d"})
	n.Send("a", "b", 1, 0) // within group: flows
	n.Send("a", "c", 1, 0) // across: cut
	n.Send("d", "a", 1, 0) // across, other direction: cut
	n.Send("c", "d", 1, 0) // within group: flows
	n.RunUntilIdle(0)
	if len(got) != 2 || got[0] != "ab" || got[1] != "cd" {
		t.Fatalf("partitioned deliveries = %v", got)
	}
	if st := n.Stats(); st.DroppedCut != 2 {
		t.Fatalf("cut drops = %d, want 2", st.DroppedCut)
	}
	n.HealAll()
	n.Send("a", "c", 1, 0)
	n.RunUntilIdle(0)
	if len(got) != 3 || got[2] != "ac" {
		t.Fatalf("healed delivery missing: %v", got)
	}
}

func TestLinkDropRateAsymmetric(t *testing.T) {
	n := New(9)
	fwd, rev := 0, 0
	n.AddNode("a", HandlerFunc(func(Addr, any, int) { rev++ }))
	n.AddNode("b", HandlerFunc(func(Addr, any, int) { fwd++ }))
	n.SetLinkDropRate("a", "b", 0.5)
	for i := 0; i < 1000; i++ {
		n.Send("a", "b", i, 1)
		n.Send("b", "a", i, 1)
	}
	n.RunUntilIdle(0)
	if rev != 1000 {
		t.Fatalf("reverse direction lost messages: %d of 1000", rev)
	}
	if fwd < 400 || fwd > 600 {
		t.Fatalf("with 50%% link loss, delivered %d of 1000", fwd)
	}
	if st := n.Stats(); st.DroppedLoss != uint64(1000-fwd) {
		t.Fatalf("loss accounting: %+v", st)
	}
	// Clearing restores the link.
	n.SetLinkDropRate("a", "b", 0)
	before := fwd
	for i := 0; i < 100; i++ {
		n.Send("a", "b", i, 1)
	}
	n.RunUntilIdle(0)
	if fwd != before+100 {
		t.Fatalf("cleared link still lossy: %d new deliveries", fwd-before)
	}
}

func TestLinkDropRateTakesMaxWithGlobal(t *testing.T) {
	n := New(11)
	got := 0
	n.AddNode("a", HandlerFunc(func(Addr, any, int) {}))
	n.AddNode("b", HandlerFunc(func(Addr, any, int) { got++ }))
	n.SetDropRate(0.9)
	n.SetLinkDropRate("a", "b", 0.1) // global is worse; it wins
	for i := 0; i < 1000; i++ {
		n.Send("a", "b", i, 1)
	}
	n.RunUntilIdle(0)
	if got > 200 {
		t.Fatalf("per-link rate overrode a worse global rate: %d delivered", got)
	}
}

func TestDropRate(t *testing.T) {
	n := New(7)
	var got int
	n.AddNode("a", HandlerFunc(func(Addr, any, int) {}))
	n.AddNode("b", HandlerFunc(func(Addr, any, int) { got++ }))
	n.SetDropRate(0.5)
	for i := 0; i < 1000; i++ {
		n.Send("a", "b", i, 1)
	}
	n.RunUntilIdle(0)
	if got < 400 || got > 600 {
		t.Fatalf("with 50%% drop, delivered %d of 1000", got)
	}
	st := n.Stats()
	if st.MessagesDropped+st.MessagesDelivered != st.MessagesSent {
		t.Fatalf("counter mismatch: %+v", st)
	}
}

func TestBandwidthAccounting(t *testing.T) {
	n := New(1)
	n.AddNode("a", HandlerFunc(func(Addr, any, int) {}))
	n.AddNode("b", HandlerFunc(func(Addr, any, int) {}))
	n.Send("a", "b", "x", 100)
	n.Send("a", "b", "y", 50)
	n.RunUntilIdle(0)
	if n.BytesDeliveredTo("b") != 150 {
		t.Fatalf("bytes = %d, want 150", n.BytesDeliveredTo("b"))
	}
	if n.Stats().BytesDelivered != 150 {
		t.Fatalf("total bytes = %d", n.Stats().BytesDelivered)
	}
}

func TestHandlerMaySendDuringDelivery(t *testing.T) {
	n := New(1)
	r := &recorder{}
	n.AddNode("a", r)
	n.AddNode("b", HandlerFunc(func(from Addr, msg any, size int) {
		n.Send("b", "a", "reply", 1)
	}))
	n.Send("a", "b", "ping", 1)
	n.RunUntilIdle(0)
	if len(r.msgs) != 1 || r.msgs[0] != "reply" {
		t.Fatalf("reply not delivered: %v", r.msgs)
	}
}

func TestRunUntilAdvancesClockWithoutEvents(t *testing.T) {
	n := New(1)
	n.RunUntil(time.Second)
	if n.Now() != time.Second {
		t.Fatalf("clock = %v", n.Now())
	}
}

func TestDeferRunsInOrder(t *testing.T) {
	n := New(1)
	var order []int
	n.Defer(func() { order = append(order, 1) })
	n.Defer(func() { order = append(order, 2) })
	n.RunUntilIdle(0)
	if len(order) != 2 || order[0] != 1 || order[1] != 2 {
		t.Fatalf("defer order = %v", order)
	}
}

func TestUnknownDestinationDropped(t *testing.T) {
	n := New(1)
	n.AddNode("a", HandlerFunc(func(Addr, any, int) {}))
	n.Send("a", "ghost", "x", 1)
	n.RunUntilIdle(0)
	if n.Stats().MessagesDropped != 1 {
		t.Fatalf("stats = %+v", n.Stats())
	}
}

func TestUniformLatencyBounds(t *testing.T) {
	m := UniformLatency(5*time.Millisecond, 10*time.Millisecond)
	n := New(3)
	for i := 0; i < 100; i++ {
		d := m("a", "b", n.Rand())
		if d < 5*time.Millisecond || d > 10*time.Millisecond {
			t.Fatalf("latency %v out of bounds", d)
		}
	}
}

func TestStepReturnsFalseWhenEmpty(t *testing.T) {
	n := New(1)
	if n.Step() {
		t.Fatal("Step on empty queue returned true")
	}
	if n.Pending() != 0 {
		t.Fatal("pending nonzero")
	}
}

func TestProcessingCostSerializesDeliveries(t *testing.T) {
	n := New(1)
	n.SetLatency(ConstantLatency(time.Millisecond))
	n.SetProcessingCost(10 * time.Millisecond)
	var times []time.Duration
	n.AddNode("a", HandlerFunc(func(Addr, any, int) {}))
	n.AddNode("b", HandlerFunc(func(Addr, any, int) { times = append(times, n.Now()) }))
	// Three messages arrive simultaneously; the busy server spaces them
	// by the processing cost.
	for i := 0; i < 3; i++ {
		n.Send("a", "b", i, 1)
	}
	n.RunUntilIdle(0)
	if len(times) != 3 {
		t.Fatalf("delivered %d", len(times))
	}
	if times[1]-times[0] < 10*time.Millisecond || times[2]-times[1] < 10*time.Millisecond {
		t.Fatalf("deliveries not serialized: %v", times)
	}
}

func TestProcessingCostZeroIsInstant(t *testing.T) {
	n := New(1)
	count := 0
	n.AddNode("a", HandlerFunc(func(Addr, any, int) {}))
	n.AddNode("b", HandlerFunc(func(Addr, any, int) { count++ }))
	for i := 0; i < 5; i++ {
		n.Send("a", "b", i, 1)
	}
	n.RunUntilIdle(0)
	if count != 5 {
		t.Fatalf("delivered %d", count)
	}
}
