package cliutil

import (
	"flag"
	"log/slog"
	"time"

	"stellar/internal/herder"
	"stellar/internal/obs/flight"
	"stellar/internal/obs/slo"
	"stellar/internal/obs/timeseries"
)

// AlertFlags is the detection-layer tuning shared by stellar-node and
// horizon-demo: sampling cadence, stall sensitivity, and the crash-bundle
// destination. Detection is on by default — a node that cannot notice its
// own stall defeats the point — and -no-alerts turns the whole stack off.
type AlertFlags struct {
	// Disable turns the sampler, SLO engine, watchdog, and flight
	// recorder off.
	Disable bool
	// SampleInterval is the registry sampling cadence (0 = 1 s).
	SampleInterval time.Duration
	// StallIntervals is how many expected ledger intervals may pass with
	// no close before the close-stall alert fires and the watchdog dumps a
	// crash bundle (0 = 8 — wall-clock nodes see real scheduling jitter,
	// so the bar sits higher than the simulator's default 4).
	StallIntervals int
	// MinPeers arms the peer-loss alert (0 = off).
	MinPeers int
	// BundleDir receives crash bundles ("" = crash-bundles).
	BundleDir string
}

// Register attaches the alert flags to fs.
func (f *AlertFlags) Register(fs *flag.FlagSet) {
	fs.BoolVar(&f.Disable, "no-alerts", false, "disable SLO alerting, the liveness watchdog, and the flight recorder")
	fs.DurationVar(&f.SampleInterval, "sample-interval", 0, "metric sampling cadence for SLO evaluation (0 = 1s)")
	fs.IntVar(&f.StallIntervals, "stall-intervals", 0, "ledger intervals without a close before the stall alert fires (0 = 8)")
	fs.StringVar(&f.BundleDir, "bundle-dir", "", "directory for crash bundles (default crash-bundles)")
}

// AlertStack is one process's wired detection layer.
type AlertStack struct {
	Ring    *timeseries.Ring
	Engine  *slo.Engine
	Flight  *flight.Recorder
	Sampler *timeseries.Sampler
	Clock   func() time.Duration
}

// AlertWiring is what Build needs from the hosting binary.
type AlertWiring struct {
	// Node supplies the ledger interval and the registry.
	Node *herder.Node
	// NodeName labels reports and bundles.
	NodeName string
	// Pre runs before each sample under whatever lock the node's event
	// loop requires — it must refresh the pull-style quorum gauges
	// (Node.RefreshQuorumHealth), which otherwise update only at ledger
	// close: exactly the event a stall withholds.
	Pre func()
	// MinPeers arms the peer-loss rule (0 = off; single-process demos
	// have no transport).
	MinPeers int
	// Log receives alert transitions and dump events.
	Log *slog.Logger
}

// Build wires the detection stack for a live binary: time-series ring,
// SLO engine over DefaultRules, flight recorder, a watchdog transition
// hook (close stall firing dumps a crash bundle), and the wall-clock
// sampler driving it all. Returns nil when flags disable alerting.
// Callers then SetAlerts on their horizon server and Start the stack.
func (f *AlertFlags) Build(w AlertWiring) *AlertStack {
	if f.Disable {
		return nil
	}
	interval := f.SampleInterval
	if interval <= 0 {
		interval = time.Second
	}
	stallIntervals := f.StallIntervals
	if stallIntervals <= 0 {
		stallIntervals = 8
	}
	bundleDir := f.BundleDir
	if bundleDir == "" {
		bundleDir = "crash-bundles"
	}
	minPeers := f.MinPeers
	if minPeers <= 0 {
		minPeers = w.MinPeers
	}

	clock := timeseries.WallClock()
	ring := timeseries.New(0)
	ob := w.Node.Obs()
	engine := slo.NewEngine(ring, slo.DefaultRules(slo.Config{
		LedgerInterval: w.Node.LedgerInterval(),
		StallIntervals: stallIntervals,
		MinPeers:       minPeers,
	}), ob.Reg, w.Log)
	fl := flight.New(flight.Config{
		Dir:    bundleDir,
		Node:   w.NodeName,
		Ring:   ring,
		Tracer: ob.Tracer,
		Proto:  ob.Trace,
		Alerts: engine,
		Clock:  clock,
		Log:    w.Log,
	})
	// The liveness watchdog: a firing close-stall alert is the signal the
	// node is wedged, so capture the post-mortem while the evidence is
	// still in memory.
	engine.OnTransition(func(rule slo.Rule, from, to slo.State, now time.Duration) {
		if rule.Name == slo.RuleCloseStall && to == slo.StateFiring {
			fl.AutoDump("close-stall", now)
		}
	})
	stack := &AlertStack{
		Ring:   ring,
		Engine: engine,
		Flight: fl,
		Clock:  clock,
		Sampler: &timeseries.Sampler{
			Reg:      ob.Reg,
			Ring:     ring,
			Interval: interval,
			Clock:    clock,
			Pre:      w.Pre,
			OnSample: engine.Evaluate,
		},
	}
	return stack
}

// Start launches the sampling goroutine. Nil-safe.
func (s *AlertStack) Start() {
	if s != nil {
		s.Sampler.Start()
	}
}

// Stop halts sampling. Nil-safe; call before tearing down the event loop
// the Pre hook locks.
func (s *AlertStack) Stop() {
	if s != nil {
		s.Sampler.Stop()
	}
}
