package cliutil

import (
	"errors"
	"flag"

	"stellar/internal/history"
)

// DurabilityFlags configure the disk-backed archive (ROADMAP item 3,
// DESIGN.md §16): where state persists across restarts, how often bucket
// checkpoints are cut, which bucket-list levels live on disk instead of
// RAM, and whether an empty node should cold-start by fetching a peer's
// archive over the network.
type DurabilityFlags struct {
	// DataDir is the archive directory (headers, tx sets, buckets,
	// checkpoints). Empty keeps the node fully in-memory, as before.
	DataDir string
	// CheckpointInterval is the number of ledgers between bucket
	// checkpoints (0 = every ledger). Headers and tx sets are archived
	// every ledger regardless.
	CheckpointInterval int
	// SpillLevel makes bucket-list levels >= this index disk-backed
	// (0 = everything stays in RAM).
	SpillLevel int
	// Catchup makes a node whose archive has no checkpoint fetch a
	// peer's archive over the overlay instead of bootstrapping genesis.
	Catchup bool
}

// Register attaches the durability flags to fs.
func (f *DurabilityFlags) Register(fs *flag.FlagSet) {
	fs.StringVar(&f.DataDir, "data-dir", "", "archive directory for headers, tx sets, buckets, and checkpoints (empty = in-memory only)")
	fs.IntVar(&f.CheckpointInterval, "checkpoint-interval", 0, "ledgers between bucket checkpoints (0 = every ledger; needs -data-dir)")
	fs.IntVar(&f.SpillLevel, "bucket-spill-level", 0, "bucket-list levels at or above this index live on disk (0 = all in RAM; needs -data-dir)")
	fs.BoolVar(&f.Catchup, "catchup", false, "on an archive with no checkpoint, fetch a peer's archive over the network instead of bootstrapping at genesis (needs -data-dir)")
}

// Open validates the flag combination and opens the archive; a nil
// archive (no error) means -data-dir was not given.
func (f *DurabilityFlags) Open() (*history.Archive, error) {
	if f.DataDir == "" {
		if f.Catchup {
			return nil, errors.New("-catchup needs -data-dir")
		}
		if f.CheckpointInterval != 0 || f.SpillLevel != 0 {
			return nil, errors.New("-checkpoint-interval and -bucket-spill-level need -data-dir")
		}
		return nil, nil
	}
	return history.Open(f.DataDir)
}
