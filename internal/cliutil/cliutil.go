// Package cliutil holds the flag surface shared by the repo's binaries
// (stellar-sim, horizon-demo, stellar-node), so the verification-tuning
// and tracing flags cannot drift apart: one registration point, one help
// string, one trace-writing path.
package cliutil

import (
	"flag"
	"fmt"
	"os"

	"stellar/internal/obs"
)

// CommonFlags is the flag set every binary that builds herder nodes
// shares: signature-verification tuning and span tracing.
type CommonFlags struct {
	// VerifyWorkers sizes the signature verification pool
	// (0 = NumCPU, 1 = sequential); VerifyCache bounds its LRU.
	VerifyWorkers int
	VerifyCache   int
	// ApplyWorkers sizes the conflict-graph parallel transaction apply
	// (0 or 1 = sequential reference path); ApplyCheck makes the scheduler
	// panic when a worker escapes its declared write set instead of only
	// counting apply_rwset_violations_total.
	ApplyWorkers int
	ApplyCheck   bool
	// TracePath, when non-empty, enables span tracing and names the
	// Chrome trace-event JSON file to write.
	TracePath string
	// TraceLive enables span tracing with no file on exit — the span
	// store is served live over GET /debug/trace/export for the fleet
	// collector (stellar-obs) to scrape.
	TraceLive bool
	// TraceLimit bounds the in-memory span store; drops past capacity
	// are counted in the trace_spans_dropped metric (0 = default cap).
	TraceLimit int
}

// IngressFlags is the submit-pipeline tuning shared by binaries that
// serve the horizon API: mempool bounds and per-client rate limits. The
// zero values keep the defaults (bounded pool, no throttling), so a bare
// invocation behaves exactly as before the pipeline existed.
type IngressFlags struct {
	// MempoolMax caps the pending transaction pool; MempoolPerSource caps
	// one account's share of it (0 = package defaults).
	MempoolMax       int
	MempoolPerSource int
	// SubmitRate/SubmitBurst throttle submissions per source account
	// (tx/sec, 0 = unlimited); SubmitIPRate/SubmitIPBurst do the same per
	// remote IP before the request body is even decoded.
	SubmitRate    float64
	SubmitBurst   int
	SubmitIPRate  float64
	SubmitIPBurst int
}

// Register attaches the ingress flags to fs.
func (f *IngressFlags) Register(fs *flag.FlagSet) {
	fs.IntVar(&f.MempoolMax, "mempool", 0, "pending transaction pool cap (0 = default 8192)")
	fs.IntVar(&f.MempoolPerSource, "mempool-per-source", 0, "pending transactions one account may hold (0 = default 64)")
	fs.Float64Var(&f.SubmitRate, "submit-rate", 0, "per-source-account submission rate in tx/sec (0 = unlimited)")
	fs.IntVar(&f.SubmitBurst, "submit-burst", 0, "per-source-account submission burst (0 = 1 when -submit-rate is set)")
	fs.Float64Var(&f.SubmitIPRate, "submit-ip-rate", 0, "per-remote-IP submission rate in tx/sec (0 = unlimited)")
	fs.IntVar(&f.SubmitIPBurst, "submit-ip-burst", 0, "per-remote-IP submission burst (0 = 1 when -submit-ip-rate is set)")
}

// Register attaches the shared flags to fs (flag.CommandLine in main).
func (f *CommonFlags) Register(fs *flag.FlagSet) {
	fs.IntVar(&f.VerifyWorkers, "verify-workers", 0, "signature verification pool size (0 = NumCPU, 1 = sequential)")
	fs.IntVar(&f.VerifyCache, "verify-cache", 0, "signature verification cache entries (0 = default)")
	fs.IntVar(&f.ApplyWorkers, "apply-workers", 0, "parallel transaction apply workers (0 or 1 = sequential)")
	fs.BoolVar(&f.ApplyCheck, "apply-check", false, "panic when parallel apply escapes a declared write set (debug)")
	fs.StringVar(&f.TracePath, "trace", "", "write a Chrome trace-event JSON file (open in Perfetto)")
	fs.BoolVar(&f.TraceLive, "trace-live", false, "enable span tracing served over /debug/trace/export without writing a file")
	fs.IntVar(&f.TraceLimit, "trace-limit", 0, "max in-memory spans; excess counted in trace_spans_dropped (0 = default)")
}

// Tracing reports whether span tracing was requested.
func (f *CommonFlags) Tracing() bool { return f.TracePath != "" || f.TraceLive }

// WriteTrace writes the tracer's Chrome trace JSON to the -trace path;
// with -trace-live alone there is no file and this is a no-op.
func (f *CommonFlags) WriteTrace(tracer *obs.Tracer) error {
	if f.TracePath == "" {
		return nil
	}
	out, err := os.Create(f.TracePath)
	if err != nil {
		return err
	}
	if err := tracer.WriteChromeTrace(out); err != nil {
		out.Close()
		return err
	}
	if err := out.Close(); err != nil {
		return err
	}
	fmt.Printf("\ntrace written to %s (load in https://ui.perfetto.dev or chrome://tracing)\n", f.TracePath)
	return nil
}
