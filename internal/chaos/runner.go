package chaos

import (
	"fmt"
	"log/slog"
	"math/rand"
	"os"
	"sort"
	"strings"
	"time"

	"stellar/internal/experiments"
	"stellar/internal/fba"
	"stellar/internal/herder"
	"stellar/internal/history"
	"stellar/internal/obs"
	"stellar/internal/obs/flight"
	"stellar/internal/obs/slo"
	"stellar/internal/obs/timeseries"
	"stellar/internal/qconfig"
	"stellar/internal/simnet"
	"stellar/internal/stellarcrypto"
)

// Report summarizes a completed scenario run.
type Report struct {
	Name             string
	Seed             int64
	VirtualTime      time.Duration
	MinSeq           uint32 // lowest last-closed ledger across honest nodes
	MaxSeq           uint32 // highest last-closed ledger across honest nodes
	LedgersAfterHeal uint32 // fewest ledgers any honest node closed after the last fault
	FaultsInjected   int
	AdversaryPackets uint64
	NetStats         simnet.Stats
	// Phases is the per-phase latency decomposition when the scenario ran
	// with Trace set, nil otherwise.
	Phases *obs.Decomposition
	// AlertsFired lists every alert that fired on any honest node during
	// an Alerts-enabled run; AlertsUnresolved lists those still firing at
	// the end; Bundles lists crash-bundle directories the flight
	// recorders wrote.
	AlertsFired      []string
	AlertsUnresolved []string
	Bundles          []string
}

// String renders the report as one line.
func (r *Report) String() string {
	return fmt.Sprintf("%s seed=%d: ok  ledgers=%d..%d  after-heal=%d  faults=%d  adv-packets=%d  t=%v",
		r.Name, r.Seed, r.MinSeq, r.MaxSeq, r.LedgersAfterHeal, r.FaultsInjected,
		r.AdversaryPackets, r.VirtualTime)
}

// instruments are the chaos harness's registry series.
type instruments struct {
	scenarios *obs.CounterVec // chaos_scenarios_total{outcome}
	faults    *obs.CounterVec // chaos_faults_injected_total{kind}
	failures  *obs.CounterVec // chaos_invariant_failures_total{invariant}
	ledgers   *obs.Counter    // chaos_ledgers_closed_total
	advSent   *obs.Counter    // chaos_adversary_packets_total
}

func newInstruments(reg *obs.Registry) *instruments {
	if reg == nil {
		return nil
	}
	return &instruments{
		scenarios: reg.CounterVec("chaos_scenarios_total",
			"chaos scenarios run, by outcome", "outcome"),
		faults: reg.CounterVec("chaos_faults_injected_total",
			"faults injected into simulated networks", "kind"),
		failures: reg.CounterVec("chaos_invariant_failures_total",
			"invariant violations detected", "invariant"),
		ledgers: reg.Counter("chaos_ledgers_closed_total",
			"ledgers closed across all chaos scenarios (slowest node's view)"),
		advSent: reg.Counter("chaos_adversary_packets_total",
			"attack packets emitted by Byzantine adversaries"),
	}
}

// Runner executes one scenario: it builds the simulated network and its
// adversaries, applies the fault schedule in virtual-time order, checks
// invariants every tick, and enforces liveness recovery after the heal.
type Runner struct {
	Scenario Scenario
	Sim      *experiments.SimNetwork
	Advs     []*Adversary
	Checker  *Checker

	baseLatency simnet.LatencyModel
	ins         *instruments
	log         *slog.Logger
	probes      []*alertProbe
}

// alertProbe is one honest validator's detection stack: a time-series
// ring over the node's private registry, the SLO engine judging it, and
// (optionally) a flight recorder dumping crash bundles on close stalls.
// The simulation is single-threaded, so the runner samples and evaluates
// every probe between ticks with no extra locking.
type alertProbe struct {
	idx     int
	ring    *timeseries.Ring
	engine  *slo.Engine
	flight  *flight.Recorder
	bundles []string
}

// Run builds and executes a scenario; ob (optional) supplies the metric
// registry for outcome counters and the logger.
func Run(sc Scenario, ob *obs.Obs) (*Report, error) {
	r, err := NewRunner(sc, ob)
	if err != nil {
		return nil, err
	}
	return r.Run()
}

// quorumSetFor builds the quorum set every validator (honest and
// Byzantine) advertises, given the scenario topology.
func quorumSetFor(topology Topology, honest, byz []fba.NodeID) (fba.QuorumSet, error) {
	switch topology {
	case TopologyFlat:
		all := append(append([]fba.NodeID(nil), honest...), byz...)
		sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
		// Any two quorums must intersect in more than |byz| nodes, so the
		// intersection always contains an honest node: 2t−n ≥ f+1.
		t := (len(all)+len(byz))/2 + 1
		return fba.QuorumSet{Threshold: t, Validators: all}, nil
	case TopologyTiered:
		// Organizations of three, at most one Byzantine member each (its
		// org's 2-of-3 threshold still reaches honest agreement).
		members := append([]fba.NodeID(nil), honest...)
		for i, b := range byz {
			at := i * 3
			if at > len(members) {
				at = len(members)
			}
			members = append(members[:at], append([]fba.NodeID{b}, members[at:]...)...)
		}
		if len(members)%3 != 0 {
			return fba.QuorumSet{}, fmt.Errorf("chaos: tiered topology needs a multiple of 3 validators, have %d", len(members))
		}
		var cfg qconfig.Config
		for o := 0; o*3 < len(members); o++ {
			cfg.Orgs = append(cfg.Orgs, qconfig.Organization{
				Name:       fmt.Sprintf("org%02d", o),
				Quality:    qconfig.High,
				Validators: members[o*3 : o*3+3],
			})
		}
		return cfg.Synthesize()
	default:
		return fba.QuorumSet{}, fmt.Errorf("chaos: unknown topology %q", topology)
	}
}

// NewRunner builds the scenario's network, adversaries, and checker.
func NewRunner(sc Scenario, ob *obs.Obs) (*Runner, error) {
	sc.defaults()
	ob = ob.Normalize()
	r := &Runner{
		Scenario: sc,
		ins:      newInstruments(ob.Reg),
		log:      obs.Component(ob.Log, "chaos"),
	}

	// Byzantine identities exist before the network is built so honest
	// quorum sets can include them (a befouled configuration, §3.1).
	byzKeys := stellarcrypto.DeterministicKeyPairs(fmt.Sprintf("byzantine-%d", sc.Seed), sc.Byzantine)
	byzIDs := make([]fba.NodeID, len(byzKeys))
	for i, kp := range byzKeys {
		byzIDs[i] = fba.NodeIDFromPublicKey(kp.Public)
	}

	var qsErr error
	opts := experiments.Options{
		Validators:     sc.Validators,
		Accounts:       sc.Accounts,
		TxRate:         sc.TxRate,
		LedgerInterval: sc.LedgerInterval,
		Seed:           sc.Seed,
		QSetFor: func(i int, all []fba.NodeID) fba.QuorumSet {
			qs, err := quorumSetFor(sc.Topology, all, byzIDs)
			if err != nil && qsErr == nil {
				qsErr = err
			}
			return qs
		},
		ArchiveDirFor:      sc.ArchiveDirFor,
		CheckpointInterval: sc.CheckpointInterval,
		Trace:              sc.Trace,
	}
	sim, err := experiments.Build(opts)
	if err != nil {
		return nil, err
	}
	if qsErr != nil {
		return nil, qsErr
	}
	r.Sim = sim
	r.baseLatency = sim.Net.Latency()

	honestAddrs := make([]simnet.Addr, len(sim.Nodes))
	honestIDs := make([]fba.NodeID, len(sim.Nodes))
	views := make([]NodeView, len(sim.Nodes))
	for i, n := range sim.Nodes {
		honestAddrs[i] = n.Addr()
		honestIDs[i] = n.ID()
		views[i] = n
	}
	r.Checker = NewChecker(views...)

	for i, kp := range byzKeys {
		qs, err := quorumSetFor(sc.Topology, honestIDs, byzIDs)
		if err != nil {
			return nil, err
		}
		rng := rand.New(rand.NewSource(sc.Seed ^ int64(0x5eed<<16) ^ int64(i+1)))
		adv := NewAdversary(sim.Net, kp, qs, sim.NetworkID, sc.Behaviors, rng)
		adv.Connect(honestAddrs...)
		for _, n := range sim.Nodes {
			n.Overlay().Connect(adv.Addr())
		}
		r.Advs = append(r.Advs, adv)
	}

	if sc.Alerts {
		for i, n := range sim.Nodes {
			p := &alertProbe{idx: i, ring: timeseries.New(0)}
			p.engine = slo.NewEngine(p.ring, slo.DefaultRules(slo.Config{
				LedgerInterval: sc.LedgerInterval,
			}), n.Obs().Reg, ob.Log)
			if sc.BundleDir != "" {
				p.flight = flight.New(flight.Config{
					Dir:    sc.BundleDir,
					Node:   fmt.Sprintf("node-%d", i),
					Ring:   p.ring,
					Tracer: n.Obs().Tracer,
					Proto:  n.Obs().Trace,
					Alerts: p.engine,
					Clock:  sim.Net.Now,
					Log:    ob.Log,
				})
				probe := p
				p.engine.OnTransition(func(rule slo.Rule, from, to slo.State, now time.Duration) {
					if rule.Name == slo.RuleCloseStall && to == slo.StateFiring {
						if dir, ok := probe.flight.AutoDump("close-stall", now); ok {
							probe.bundles = append(probe.bundles, dir)
						}
					}
				})
			}
			r.probes = append(r.probes, p)
		}
	}
	return r, nil
}

// sampleProbes feeds every probe one detection tick: refresh the node's
// pull-style quorum gauges, snapshot its registry into the ring, and run
// the rule engine on the virtual clock. Gauges otherwise refresh only at
// ledger close — exactly the event a stall withholds.
func (r *Runner) sampleProbes(now time.Duration) {
	for _, p := range r.probes {
		n := r.Sim.Nodes[p.idx]
		n.RefreshQuorumHealth()
		p.ring.Observe(now, n.Obs().Reg.Snapshot())
		p.engine.Evaluate(now)
	}
}

// apply injects one fault into the running network. Faults that touch
// durable state (kill_wipe, rejoin) can fail on a misconfigured scenario;
// that is a harness error, not an invariant violation.
func (r *Runner) apply(f Fault) error {
	net := r.Sim.Net
	addr := func(i int) simnet.Addr { return r.Sim.Nodes[i].Addr() }
	switch f.Kind {
	case FaultPartition:
		groups := make([][]simnet.Addr, len(f.Groups))
		for gi, g := range f.Groups {
			for _, i := range g {
				groups[gi] = append(groups[gi], addr(i))
			}
		}
		net.PartitionGroups(groups...)
	case FaultHeal:
		net.HealAll()
	case FaultCrash:
		net.SetDown(addr(f.Node))
	case FaultRestart:
		net.SetUp(addr(f.Node))
		// The process is back with its herder state intact: re-arm its
		// ledger cadence and let it announce its latest consensus state.
		r.Sim.Nodes[f.Node].Start()
		r.Sim.Nodes[f.Node].RebroadcastLatest()
	case FaultDropRate:
		net.SetDropRate(f.Rate)
	case FaultLinkLoss:
		net.SetLinkDropRate(addr(f.From), addr(f.To), f.Rate)
	case FaultLatencySpike:
		base := r.baseLatency
		extra := f.Extra
		net.SetLatency(func(from, to simnet.Addr, rng *rand.Rand) time.Duration {
			return base(from, to, rng) + extra
		})
	case FaultLatencyRestore:
		net.SetLatency(r.baseLatency)
	case FaultKillWipe:
		net.SetDown(addr(f.Node))
		if err := r.wipeArchive(f.Node); err != nil {
			return fmt.Errorf("chaos: kill_wipe node %d: %w", f.Node, err)
		}
	case FaultRejoin:
		if err := r.rejoin(f.Node); err != nil {
			return fmt.Errorf("chaos: rejoin node %d: %w", f.Node, err)
		}
	}
	if r.ins != nil {
		r.ins.faults.With(f.Kind.String()).Inc()
	}
	r.log.Info("fault injected", "fault", f.String(), "t", net.Now())
	return nil
}

// wipeArchive destroys node i's archive directory and reopens it empty —
// the disk half of kill_wipe. The crashed node's old in-memory handle is
// never used again (rejoin builds a replacement on the fresh handle).
func (r *Runner) wipeArchive(i int) error {
	a := r.Sim.Archives[i]
	if a == nil {
		return fmt.Errorf("no archive (scenario needs ArchiveDirFor)")
	}
	dir := a.Dir()
	if err := os.RemoveAll(dir); err != nil {
		return err
	}
	fresh, err := history.Open(dir)
	if err != nil {
		return err
	}
	r.Sim.Archives[i] = fresh
	r.Sim.Configs[i].Archive = fresh
	return nil
}

// rejoin replaces node i with a freshly built process sharing its
// identity: herder.New re-registers the address on the simulated network
// (replacing the dead handler), the overlay is re-meshed, and the node
// boots the way a real restart would — restore-and-replay when its
// archive still holds a checkpoint, network catchup when it was wiped.
func (r *Runner) rejoin(i int) error {
	cfg := r.Sim.Configs[i]
	if cfg.Archive == nil {
		return fmt.Errorf("no archive (scenario needs ArchiveDirFor)")
	}
	node, err := herder.New(r.Sim.Net, cfg)
	if err != nil {
		return err
	}
	r.Sim.Net.SetUp(node.Addr())
	// The alert probe needs no rebinding: its engine judges the ring, and
	// sampleProbes re-reads r.Sim.Nodes[i] each tick, so the next sample
	// already snapshots the replacement's registry. Keeping the engine
	// preserves its fired-alert history for the detection assertions.
	r.Sim.Nodes[i] = node
	r.Checker.Replace(i, node)
	for j, peer := range r.Sim.Nodes {
		if j == i {
			continue
		}
		node.Overlay().Connect(peer.Addr())
		peer.Overlay().Connect(node.Addr())
	}
	for _, adv := range r.Advs {
		node.Overlay().Connect(adv.Addr())
		adv.Connect(node.Addr())
	}
	if _, err := cfg.Archive.LatestCheckpointSeq(); err == nil {
		// Disk survived: a warm restart — restore, replay, rejoin.
		if _, err := node.RestoreFromArchive(cfg.Archive); err != nil {
			return err
		}
		node.Start()
		node.RebroadcastLatest()
		return nil
	}
	// Disk wiped: cold-start over the network.
	return node.StartNetworkCatchup(nil)
}

// fail records and wraps an invariant violation with everything needed to
// reproduce it: the scenario seed, the fault schedule, and a replay
// command.
func (r *Runner) fail(ie *InvariantError) error {
	if r.ins != nil {
		r.ins.failures.With(ie.Invariant).Inc()
		r.ins.scenarios.With("fail").Inc()
	}
	var faults strings.Builder
	for _, f := range r.Scenario.Faults {
		fmt.Fprintf(&faults, "    %s\n", f)
	}
	return fmt.Errorf("chaos: scenario %q seed %d: %w\n  schedule:\n%s  replay: %s",
		r.Scenario.Name, r.Scenario.Seed, ie, faults.String(), r.Scenario.ReplayCommand())
}

// Run executes the scenario and returns its report, or an error carrying
// the seed and replay command if any invariant fails.
func (r *Runner) Run() (*Report, error) {
	sc := r.Scenario
	sched := append(Schedule(nil), sc.Faults...)
	sched.Sort()

	r.Sim.Start()
	for _, a := range r.Advs {
		a.Start()
	}

	net := r.Sim.Net
	nextAE := sc.AntiEntropy
	// advance steps virtual time to the target, checking invariants every
	// tick and running anti-entropy rebroadcast on its cadence.
	advance := func(until time.Duration) *InvariantError {
		for net.Now() < until {
			step := until - net.Now()
			if step > sc.Tick {
				step = sc.Tick
			}
			net.RunFor(step)
			if ie := r.Checker.Check(); ie != nil {
				return ie
			}
			r.sampleProbes(net.Now())
			if net.Now() >= nextAE {
				for _, n := range r.Sim.Nodes {
					n.RebroadcastLatest()
				}
				nextAE = net.Now() + sc.AntiEntropy
			}
		}
		return nil
	}

	for _, f := range sched {
		if ie := advance(f.At); ie != nil {
			return nil, r.fail(ie)
		}
		if err := r.apply(f); err != nil {
			if r.ins != nil {
				r.ins.scenarios.With("fail").Inc()
			}
			return nil, err
		}
	}

	// The network is healed; the liveness-recovery clock starts.
	healAt := net.Now()
	baseline := r.Checker.Seqs()
	deadline := healAt + sc.LivenessWindow
	for net.Now() < deadline {
		target := net.Now() + sc.Tick
		if target > deadline {
			target = deadline
		}
		if ie := advance(target); ie != nil {
			return nil, r.fail(ie)
		}
		if livenessSatisfied(r.Checker.Seqs(), baseline, sc.LivenessLedgers) {
			break
		}
	}
	if ie := checkLiveness(r.Checker.Seqs(), baseline, sc.LivenessLedgers); ie != nil {
		return nil, r.fail(ie)
	}

	// Detection assertions: the alerts the scenario expected must have
	// fired, and the ones required to resolve must not be firing anywhere
	// now that the network is healed.
	var alertsFired, alertsUnresolved, bundles []string
	if len(r.probes) > 0 {
		firedSet := make(map[string]bool)
		firingSet := make(map[string]bool)
		for _, p := range r.probes {
			for _, name := range p.engine.EverFired() {
				firedSet[name] = true
				if p.engine.State(name) == slo.StateFiring {
					firingSet[name] = true
				}
			}
			bundles = append(bundles, p.bundles...)
		}
		for name := range firedSet {
			alertsFired = append(alertsFired, name)
		}
		for name := range firingSet {
			alertsUnresolved = append(alertsUnresolved, name)
		}
		sort.Strings(alertsFired)
		sort.Strings(alertsUnresolved)
		for _, exp := range sc.ExpectAlerts {
			if exp.MustFire && !firedSet[exp.Alert] {
				return nil, r.fail(&InvariantError{Invariant: "detection",
					Detail: fmt.Sprintf("alert %q never fired on any honest node (fired: %v)", exp.Alert, alertsFired)})
			}
			if exp.MustResolve && firingSet[exp.Alert] {
				return nil, r.fail(&InvariantError{Invariant: "detection",
					Detail: fmt.Sprintf("alert %q still firing after heal and liveness recovery", exp.Alert)})
			}
		}
		if sc.NoAlerts && len(alertsFired) > 0 {
			return nil, r.fail(&InvariantError{Invariant: "detection",
				Detail: fmt.Sprintf("fault-free run fired alerts: %v", alertsFired)})
		}
	}

	rep := &Report{
		Name:           sc.Name,
		Seed:           sc.Seed,
		VirtualTime:    net.Now(),
		MinSeq:         r.Checker.MinSeq(),
		MaxSeq:         r.Checker.MaxSeq(),
		FaultsInjected: len(sched),
		NetStats:       net.Stats(),
	}
	after := ^uint32(0)
	seqs := r.Checker.Seqs()
	for i := range seqs {
		if d := seqs[i] - baseline[i]; d < after {
			after = d
		}
	}
	rep.LedgersAfterHeal = after
	for _, a := range r.Advs {
		rep.AdversaryPackets += a.Emitted
	}
	if r.Sim.Tracer != nil {
		rep.Phases = r.Sim.Tracer.Decompose()
	}
	rep.AlertsFired = alertsFired
	rep.AlertsUnresolved = alertsUnresolved
	rep.Bundles = bundles
	if r.ins != nil {
		r.ins.scenarios.With("pass").Inc()
		r.ins.ledgers.Add(float64(rep.MinSeq))
		r.ins.advSent.Add(float64(rep.AdversaryPackets))
	}
	r.log.Info("scenario passed", "report", rep.String())
	return rep, nil
}
