// Package chaos is a scripted fault-injection harness for the simulated
// Stellar network. The paper's central claim (§3.1–§3.2.4) is that SCP
// keeps intact nodes safe under arbitrary behavior by failed nodes and
// recovers liveness once the network heals; this package turns that claim
// into an executable check. A Scenario pairs a simulated network with a
// Schedule of timed faults (partitions, crashes, loss and latency windows)
// and optional Byzantine adversaries injected at the overlay layer, runs
// it tick by tick, and verifies three invariants throughout:
//
//   - safety: no two intact nodes ever externalize different values for
//     the same slot (checked via header hashes, which commit to the full
//     decided history);
//   - monotonicity: no node's last-closed ledger ever regresses;
//   - liveness recovery: after the last fault heals, every intact node
//     closes a minimum number of further ledgers within a bounded window
//     of virtual time.
//
// Scenarios are deterministic for a given seed; any invariant failure
// reports the seed and a replay command.
package chaos

import (
	"fmt"
	"sort"
	"time"
)

// FaultKind identifies one kind of scripted fault.
type FaultKind int

// Fault kinds. Windowed conditions (loss, latency) are expressed as a
// pair of events: one that degrades and one that restores.
const (
	// FaultPartition cuts every link between nodes of different Groups.
	FaultPartition FaultKind = iota + 1
	// FaultHeal restores every partitioned link.
	FaultHeal
	// FaultCrash marks Node crashed: its traffic drops, its timers stop.
	FaultCrash
	// FaultRestart revives Node. Its herder state survives (a process
	// restart with intact on-disk state); the runner re-arms its ledger
	// cadence, and peer anti-entropy carries it back to the tip.
	FaultRestart
	// FaultDropRate sets the global message-loss probability to Rate.
	FaultDropRate
	// FaultLinkLoss sets the From→To link's loss probability to Rate
	// (asymmetric: the reverse direction is untouched). Rate ≤ 0 clears.
	FaultLinkLoss
	// FaultLatencySpike adds Extra to every link's one-way latency.
	FaultLatencySpike
	// FaultLatencyRestore reinstates the scenario's base latency model.
	FaultLatencyRestore
	// FaultKillWipe crashes Node AND destroys its archive directory — the
	// total-loss fault (dead disk). The node stays down until FaultRejoin.
	// Requires the scenario to give Node an archive (ArchiveDirFor).
	FaultKillWipe
	// FaultRejoin replaces Node with a freshly built process holding the
	// same identity but none of the old in-memory state. An archive that
	// still holds a checkpoint restores from disk and replays; an empty
	// (wiped) archive cold-starts over the network via catchup.
	FaultRejoin
)

// String names the kind for logs and metric labels.
func (k FaultKind) String() string {
	switch k {
	case FaultPartition:
		return "partition"
	case FaultHeal:
		return "heal"
	case FaultCrash:
		return "crash"
	case FaultRestart:
		return "restart"
	case FaultDropRate:
		return "drop_rate"
	case FaultLinkLoss:
		return "link_loss"
	case FaultLatencySpike:
		return "latency_spike"
	case FaultLatencyRestore:
		return "latency_restore"
	case FaultKillWipe:
		return "kill_wipe"
	case FaultRejoin:
		return "rejoin"
	default:
		return fmt.Sprintf("FaultKind(%d)", int(k))
	}
}

// Fault is one scripted event at a point in virtual time. Node, From, and
// To index the scenario's honest validators (adversaries are never fault
// targets: they are already faulty).
type Fault struct {
	At   time.Duration
	Kind FaultKind

	Groups [][]int       // FaultPartition: validator indexes per side
	Node   int           // FaultCrash / FaultRestart target
	From   int           // FaultLinkLoss source
	To     int           // FaultLinkLoss destination
	Rate   float64       // FaultDropRate / FaultLinkLoss probability
	Extra  time.Duration // FaultLatencySpike added latency
}

// String renders the fault for logs and failure reports.
func (f Fault) String() string {
	switch f.Kind {
	case FaultPartition:
		return fmt.Sprintf("t=%v partition %v", f.At, f.Groups)
	case FaultCrash, FaultRestart, FaultKillWipe, FaultRejoin:
		return fmt.Sprintf("t=%v %s node %d", f.At, f.Kind, f.Node)
	case FaultDropRate:
		return fmt.Sprintf("t=%v drop_rate %.2f", f.At, f.Rate)
	case FaultLinkLoss:
		return fmt.Sprintf("t=%v link_loss %d→%d %.2f", f.At, f.From, f.To, f.Rate)
	case FaultLatencySpike:
		return fmt.Sprintf("t=%v latency_spike +%v", f.At, f.Extra)
	default:
		return fmt.Sprintf("t=%v %s", f.At, f.Kind)
	}
}

// Schedule is a list of faults; the runner applies them in At order.
type Schedule []Fault

// Sort orders the schedule by time, stably (ties keep authored order).
func (s Schedule) Sort() {
	sort.SliceStable(s, func(i, j int) bool { return s[i].At < s[j].At })
}

// End returns the time of the last fault — the moment the network is
// fully healed, after which the liveness-recovery clock starts.
func (s Schedule) End() time.Duration {
	var end time.Duration
	for _, f := range s {
		if f.At > end {
			end = f.At
		}
	}
	return end
}
