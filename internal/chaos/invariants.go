package chaos

import (
	"fmt"

	"stellar/internal/ledger"
	"stellar/internal/stellarcrypto"
)

// NodeView is the slice of a validator the invariant checker reads. A
// *herder.Node satisfies it; tests use fakes to force violations.
type NodeView interface {
	// LastHeader returns the latest closed ledger header.
	LastHeader() *ledger.Header
	// HeaderHash returns the hash of the header closed at seq, if known.
	HeaderHash(seq uint32) (stellarcrypto.Hash, bool)
}

// InvariantError reports a violated invariant. The runner wraps it with
// the scenario seed and replay command before surfacing it.
type InvariantError struct {
	Invariant string // "safety" | "monotonicity" | "liveness" | "detection"
	Detail    string
}

// Error implements error.
func (e *InvariantError) Error() string {
	return fmt.Sprintf("%s invariant violated: %s", e.Invariant, e.Detail)
}

// Checker verifies safety and monotonicity incrementally over the intact
// nodes of a running scenario. Check is called after every simulated tick;
// each call only examines ledgers closed since the previous one, so a full
// run costs O(total ledgers), not O(ticks × ledgers).
//
// Safety is checked against a canonical header hash per sequence: the
// first node to close a ledger defines it, and every other node's header
// for that sequence must match. Because each header hash commits to the
// whole chain prefix (and, through TxSetHash and SCPValueHash, to the
// externalized consensus value), agreement on header hashes is agreement
// on externalized values.
type Checker struct {
	nodes   []NodeView
	canon   map[uint32]stellarcrypto.Hash
	canonBy map[uint32]int // node index that set the canonical hash
	checked []uint32       // per node: highest sequence verified
	lastSeq []uint32       // per node: monotonicity watermark
}

// NewChecker builds a checker over the given (intact) nodes.
func NewChecker(nodes ...NodeView) *Checker {
	return &Checker{
		nodes:   nodes,
		canon:   make(map[uint32]stellarcrypto.Hash),
		canonBy: make(map[uint32]int),
		checked: make([]uint32, len(nodes)),
		lastSeq: make([]uint32, len(nodes)),
	}
}

// Replace swaps node i's view after a chaos rebuild (FaultRejoin). The
// fresh process restarts from zero or from an archive checkpoint, so the
// per-node watermarks reset; the canonical hashes are kept, so everything
// the replacement re-closes must still agree with the network's history —
// the byte-identical reconvergence check.
func (c *Checker) Replace(i int, n NodeView) {
	c.nodes[i] = n
	c.checked[i] = 0
	c.lastSeq[i] = 0
}

// Check verifies safety and monotonicity over everything closed since the
// last call. It returns nil when both hold.
func (c *Checker) Check() *InvariantError {
	for i, n := range c.nodes {
		last := n.LastHeader()
		if last == nil {
			continue
		}
		seq := last.LedgerSeq
		if seq < c.lastSeq[i] {
			return &InvariantError{
				Invariant: "monotonicity",
				Detail: fmt.Sprintf("node %d regressed from ledger %d to %d",
					i, c.lastSeq[i], seq),
			}
		}
		c.lastSeq[i] = seq
		for s := c.checked[i] + 1; s <= seq; s++ {
			h, ok := n.HeaderHash(s)
			if !ok {
				// A node that fast-forwarded from an archive checkpoint
				// has no headers below the checkpoint; nothing to compare.
				continue
			}
			if ref, ok := c.canon[s]; ok {
				if ref != h {
					return &InvariantError{
						Invariant: "safety",
						Detail: fmt.Sprintf("nodes %d and %d externalized different values for ledger %d (%s vs %s)",
							c.canonBy[s], i, s, ref, h),
					}
				}
			} else {
				c.canon[s] = h
				c.canonBy[s] = i
			}
		}
		c.checked[i] = seq
	}
	return nil
}

// Seqs returns each node's last observed ledger sequence.
func (c *Checker) Seqs() []uint32 {
	out := make([]uint32, len(c.lastSeq))
	copy(out, c.lastSeq)
	return out
}

// MinSeq returns the lowest last-closed ledger across nodes.
func (c *Checker) MinSeq() uint32 {
	if len(c.lastSeq) == 0 {
		return 0
	}
	min := c.lastSeq[0]
	for _, s := range c.lastSeq[1:] {
		if s < min {
			min = s
		}
	}
	return min
}

// MaxSeq returns the highest last-closed ledger across nodes.
func (c *Checker) MaxSeq() uint32 {
	var max uint32
	for _, s := range c.lastSeq {
		if s > max {
			max = s
		}
	}
	return max
}

// checkLiveness verifies that every node closed at least k ledgers beyond
// its baseline (the sequence it held when the network healed).
func checkLiveness(seqs, baseline []uint32, k int) *InvariantError {
	for i := range seqs {
		if int64(seqs[i])-int64(baseline[i]) < int64(k) {
			return &InvariantError{
				Invariant: "liveness",
				Detail: fmt.Sprintf("node %d closed only %d ledgers after heal (at %d), want ≥ %d",
					i, int64(seqs[i])-int64(baseline[i]), seqs[i], k),
			}
		}
	}
	return nil
}

// livenessSatisfied reports whether every node already meets the target.
func livenessSatisfied(seqs, baseline []uint32, k int) bool {
	return checkLiveness(seqs, baseline, k) == nil
}
