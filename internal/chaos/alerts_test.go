package chaos

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"stellar/internal/obs"
	"stellar/internal/obs/flight"
	"stellar/internal/obs/slo"
	"stellar/internal/obs/timeseries"
)

// The acceptance loop of the detection layer: a partition must fire the
// close-stall alert on the starved side (plus quorum-unavailable once the
// peers go silent), a crash bundle must land on disk with every artifact,
// and both alerts must clear after the heal — asserted by the runner's
// own detection invariant plus direct bundle inspection here.
func TestPartitionAlertsFireAndResolve(t *testing.T) {
	bundleDir := t.TempDir()
	sc := PartitionHealScenario(1)
	// Equivocation only: a replay adversary re-sends captured envelopes
	// from the far side of the partition, refreshing the victims' liveness
	// evidence and masking the quorum outage from the health monitor — a
	// real detection-evasion property of replay attacks (see DESIGN.md
	// §15). The close stall still fires either way; quorum-unavailable
	// needs the peers to go properly silent.
	sc.Behaviors = BehaviorEquivocate
	sc.Trace = true // the crash bundle must carry the span store
	sc.ExpectAlerts = []AlertExpectation{
		{Alert: slo.RuleCloseStall, MustFire: true, MustResolve: true},
		{Alert: slo.RuleQuorumUnavailable, MustFire: true, MustResolve: true},
	}
	sc.BundleDir = bundleDir

	rep, err := Run(sc, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.AlertsFired) == 0 {
		t.Fatal("report lists no fired alerts")
	}
	if len(rep.Bundles) == 0 {
		t.Fatal("no crash bundle written during the stall")
	}

	// Inspect the first bundle: every post-mortem artifact present and
	// decodable, and the time-series window actually carries the stalled
	// close counter.
	dir := rep.Bundles[0]
	if !strings.Contains(filepath.Base(dir), "close-stall") {
		t.Fatalf("bundle dir %q not named for its reason", dir)
	}
	stacks, err := os.ReadFile(filepath.Join(dir, "stacks.txt"))
	if err != nil || !strings.Contains(string(stacks), "goroutine") {
		t.Fatalf("stacks.txt: err=%v", err)
	}
	var ts timeseries.Export
	decodeJSON(t, dir, "timeseries.json", &ts)
	if len(ts.Samples) == 0 {
		t.Fatal("timeseries.json holds no samples")
	}
	if _, ok := ts.Samples[len(ts.Samples)-1].Points["herder_ledgers_closed_total"]; !ok {
		t.Fatal("time-series window missing herder_ledgers_closed_total")
	}
	var spans obs.Export
	decodeJSON(t, dir, "spans.json", &spans)
	if spans.Schema != obs.ExportSchema {
		t.Fatalf("spans.json schema %q", spans.Schema)
	}
	var alerts slo.Report
	decodeJSON(t, dir, "alerts.json", &alerts)
	if !alerts.Enabled || alerts.Firing == 0 {
		t.Fatalf("alerts.json at dump time should show a firing alert: %+v", alerts)
	}
	var meta flight.Meta
	decodeJSON(t, dir, "meta.json", &meta)
	if meta.Schema != flight.MetaSchema || meta.Reason != "close-stall" {
		t.Fatalf("meta.json: %+v", meta)
	}
	if _, err := os.Stat(filepath.Join(dir, "protocol-trace.json")); err != nil {
		t.Fatalf("protocol-trace.json: %v", err)
	}
}

// A fault-free soak must fire nothing: the false-positive guard on the
// whole rule table (boot-time gauge arming, windowed-delta coverage
// gating, unix-second close intervals).
func TestFaultFreeNoAlerts(t *testing.T) {
	rep, err := Run(Scenario{
		Name:            "fault-free-soak",
		Seed:            3,
		Validators:      4,
		NoAlerts:        true,
		LivenessLedgers: 6,
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.AlertsFired) != 0 {
		t.Fatalf("fault-free soak fired %v", rep.AlertsFired)
	}
	if rep.MinSeq < 6 {
		t.Fatalf("soak closed only %d ledgers", rep.MinSeq)
	}
}

func decodeJSON(t *testing.T, dir, name string, v any) {
	t.Helper()
	b, err := os.ReadFile(filepath.Join(dir, name))
	if err != nil {
		t.Fatalf("read %s: %v", name, err)
	}
	if err := json.Unmarshal(b, v); err != nil {
		t.Fatalf("decode %s: %v", name, err)
	}
}
