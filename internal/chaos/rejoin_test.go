package chaos

import (
	"fmt"
	"path/filepath"
	"testing"

	"stellar/internal/history"
	"stellar/internal/obs/slo"
)

// runRejoin executes the durable-state acceptance scenario and checks the
// pieces the runner's own invariants don't: the expected alerts appear in
// the report, and every validator's archive — including the victim's,
// which in the wipe variant was repopulated purely over the wire — holds
// a restorable checkpoint at the end.
func runRejoin(t *testing.T, wipe bool) {
	t.Helper()
	base := t.TempDir()
	dirFor := func(i int) string { return filepath.Join(base, fmt.Sprintf("node-%d", i)) }
	rep, err := Run(KillWipeRejoinScenario(1, wipe, dirFor), nil)
	if err != nil {
		t.Fatal(err)
	}
	fired := make(map[string]bool)
	for _, name := range rep.AlertsFired {
		fired[name] = true
	}
	if !fired[slo.RuleCloseStall] || !fired[slo.RuleQuorumUnavailable] {
		t.Fatalf("stall alerts missing from report: %v", rep.AlertsFired)
	}
	// Latency-percentile alerts may legitimately still fire (the stall's
	// close interval stays in their window); the stall alerts must not.
	for _, name := range rep.AlertsUnresolved {
		if name == slo.RuleCloseStall || name == slo.RuleQuorumUnavailable {
			t.Fatalf("%s still firing after reconvergence", name)
		}
	}
	for i := 0; i < 5; i++ {
		a, err := history.Open(dirFor(i))
		if err != nil {
			t.Fatalf("node %d archive: %v", i, err)
		}
		if _, err := a.LatestCheckpointSeq(); err != nil {
			t.Fatalf("node %d archive has no checkpoint: %v", i, err)
		}
	}
}

// TestKillWipeRejoin: the victim loses process AND disk, and must rejoin
// by fetching a peer's archive over the network (cold-start catchup).
func TestKillWipeRejoin(t *testing.T) { runRejoin(t, true) }

// TestKillRestoreRejoin: the victim loses only its process; the fresh
// replacement restores from its surviving archive and replays to the tip.
func TestKillRestoreRejoin(t *testing.T) { runRejoin(t, false) }
