package chaos

import (
	"fmt"
	"os"
	"strconv"
	"strings"
	"testing"
	"time"

	"stellar/internal/ledger"
	"stellar/internal/obs"
	"stellar/internal/stellarcrypto"
)

// seedCount returns how many seeds a sweep should run: def by default,
// more when CHAOS_SEEDS is set (the nightly CI job raises it).
func seedCount(t *testing.T, def int) int {
	t.Helper()
	if s := os.Getenv("CHAOS_SEEDS"); s != "" {
		n, err := strconv.Atoi(s)
		if err != nil || n < 1 {
			t.Fatalf("bad CHAOS_SEEDS=%q", s)
		}
		return n
	}
	return def
}

// --- invariant checker unit tests (fake node views) ---

type fakeView struct {
	seq    uint32
	hashes map[uint32]stellarcrypto.Hash
}

func (f *fakeView) LastHeader() *ledger.Header {
	if f.seq == 0 {
		return nil
	}
	return &ledger.Header{LedgerSeq: f.seq}
}

func (f *fakeView) HeaderHash(s uint32) (stellarcrypto.Hash, bool) {
	h, ok := f.hashes[s]
	return h, ok
}

func (f *fakeView) close(seq uint32, value string) {
	if f.hashes == nil {
		f.hashes = make(map[uint32]stellarcrypto.Hash)
	}
	f.seq = seq
	f.hashes[seq] = stellarcrypto.HashBytes([]byte(value))
}

func TestCheckerAgreementPasses(t *testing.T) {
	a, b := &fakeView{}, &fakeView{}
	c := NewChecker(a, b)
	for seq := uint32(1); seq <= 5; seq++ {
		a.close(seq, fmt.Sprintf("v%d", seq))
		if err := c.Check(); err != nil {
			t.Fatalf("leader alone: %v", err)
		}
		b.close(seq, fmt.Sprintf("v%d", seq))
		if err := c.Check(); err != nil {
			t.Fatalf("follower caught up: %v", err)
		}
	}
	if c.MinSeq() != 5 || c.MaxSeq() != 5 {
		t.Fatalf("seqs = %d..%d, want 5..5", c.MinSeq(), c.MaxSeq())
	}
}

func TestCheckerDetectsSafetyViolation(t *testing.T) {
	a, b := &fakeView{}, &fakeView{}
	c := NewChecker(a, b)
	a.close(1, "value-A")
	if err := c.Check(); err != nil {
		t.Fatal(err)
	}
	b.close(1, "value-B") // diverging externalization for slot 1
	err := c.Check()
	if err == nil || err.Invariant != "safety" {
		t.Fatalf("got %v, want safety violation", err)
	}
	if !strings.Contains(err.Detail, "ledger 1") {
		t.Fatalf("detail %q does not name the slot", err.Detail)
	}
}

func TestCheckerDetectsRegression(t *testing.T) {
	a := &fakeView{}
	c := NewChecker(a)
	a.close(3, "v3")
	if err := c.Check(); err != nil {
		t.Fatal(err)
	}
	a.seq = 2 // last-closed ledger went backwards
	err := c.Check()
	if err == nil || err.Invariant != "monotonicity" {
		t.Fatalf("got %v, want monotonicity violation", err)
	}
}

func TestCheckerSkipsMissingHeaders(t *testing.T) {
	// A node that fast-forwarded from a checkpoint has no early headers;
	// the checker must not treat the gap as disagreement.
	a, b := &fakeView{}, &fakeView{}
	c := NewChecker(a, b)
	for seq := uint32(1); seq <= 4; seq++ {
		a.close(seq, fmt.Sprintf("v%d", seq))
	}
	b.close(4, "v4") // only the tip
	if err := c.Check(); err != nil {
		t.Fatal(err)
	}
}

func TestCheckLiveness(t *testing.T) {
	if err := checkLiveness([]uint32{7, 8}, []uint32{4, 5}, 3); err != nil {
		t.Fatalf("3 ledgers each should satisfy K=3: %v", err)
	}
	err := checkLiveness([]uint32{7, 6}, []uint32{4, 5}, 3)
	if err == nil || err.Invariant != "liveness" {
		t.Fatalf("got %v, want liveness violation", err)
	}
}

// --- scenario generator ---

func TestGenerateIsDeterministic(t *testing.T) {
	for seed := int64(0); seed < 50; seed++ {
		a, b := Generate(seed), Generate(seed)
		if fmt.Sprintf("%+v", a) != fmt.Sprintf("%+v", b) {
			t.Fatalf("seed %d: Generate is not deterministic", seed)
		}
	}
}

func TestGenerateSchedulesAreWellFormed(t *testing.T) {
	for seed := int64(0); seed < 200; seed++ {
		sc := Generate(seed)
		if sc.Validators < 4 {
			t.Fatalf("seed %d: only %d validators", seed, sc.Validators)
		}
		if sc.Byzantine >= sc.Validators {
			t.Fatalf("seed %d: %d byzantine vs %d honest", seed, sc.Byzantine, sc.Validators)
		}
		if len(sc.Faults) == 0 {
			t.Fatalf("seed %d: empty schedule", seed)
		}
		last := sc.Faults[len(sc.Faults)-1]
		if last.Kind != FaultHeal || last.At != sc.Faults.End() {
			t.Fatalf("seed %d: schedule does not end with a heal", seed)
		}
		for _, f := range sc.Faults {
			for _, g := range f.Groups {
				for _, idx := range g {
					if idx < 0 || idx >= sc.Validators {
						t.Fatalf("seed %d: fault %s targets out-of-range node", seed, f)
					}
				}
			}
			if f.Kind == FaultCrash || f.Kind == FaultRestart {
				if f.Node < 0 || f.Node >= sc.Validators {
					t.Fatalf("seed %d: fault %s targets out-of-range node", seed, f)
				}
			}
		}
	}
}

// --- full scenario runs ---

// TestPartitionHealSweep is the acceptance gate for the chaos harness: the
// partition + Byzantine-equivocator + heal scenario must keep safety and
// recover liveness across at least 20 distinct seeds.
func TestPartitionHealSweep(t *testing.T) {
	seeds := seedCount(t, 20)
	for seed := int64(1); seed <= int64(seeds); seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed-%d", seed), func(t *testing.T) {
			t.Parallel()
			rep, err := Run(PartitionHealScenario(seed), nil)
			if err != nil {
				t.Fatal(err)
			}
			if rep.LedgersAfterHeal < 3 {
				t.Fatalf("only %d ledgers after heal", rep.LedgersAfterHeal)
			}
			if rep.AdversaryPackets == 0 {
				t.Fatal("adversary sent nothing; scenario did not exercise Byzantine paths")
			}
			if rep.NetStats.DroppedCut == 0 {
				t.Fatal("no messages were cut; partition never took effect")
			}
		})
	}
}

// TestRandomScenarioSweep drives the generator end to end on a handful of
// seeds (the nightly job widens the sweep via CHAOS_SEEDS).
func TestRandomScenarioSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("random scenario sweep skipped in -short mode")
	}
	seeds := seedCount(t, 6)
	for seed := int64(1000); seed < int64(1000+seeds); seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed-%d", seed), func(t *testing.T) {
			t.Parallel()
			rep, err := Run(Generate(seed), nil)
			if err != nil {
				t.Fatal(err)
			}
			if rep.MinSeq == 0 {
				t.Fatal("a node closed no ledgers at all")
			}
		})
	}
}

func TestCrashRestartRecovery(t *testing.T) {
	rep, err := Run(Scenario{
		Name:       "crash-restart",
		Seed:       7,
		Validators: 4,
		Faults: Schedule{
			{At: 11 * time.Second, Kind: FaultCrash, Node: 2},
			{At: 31 * time.Second, Kind: FaultRestart, Node: 2},
		},
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rep.NetStats.DroppedDown == 0 {
		t.Fatal("no traffic dropped while the node was down; crash never took effect")
	}
	if rep.LedgersAfterHeal < 3 {
		t.Fatalf("restarted node closed only %d ledgers after heal", rep.LedgersAfterHeal)
	}
}

func TestTieredTopologyUnderPartition(t *testing.T) {
	if testing.Short() {
		t.Skip("tiered partition scenario skipped in -short mode")
	}
	rep, err := Run(Scenario{
		Name:       "tiered-partition",
		Seed:       11,
		Topology:   TopologyTiered,
		Validators: 8, // + 1 byzantine = 3 orgs of 3
		Byzantine:  1,
		Faults: Schedule{
			{At: 10 * time.Second, Kind: FaultPartition, Groups: [][]int{{0, 1, 2}, {3, 4, 5, 6, 7}}},
			{At: 35 * time.Second, Kind: FaultHeal},
		},
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rep.LedgersAfterHeal < 3 {
		t.Fatalf("only %d ledgers after heal", rep.LedgersAfterHeal)
	}
}

// TestByzantineOnlyNoStall runs every adversary behavior against a healthy
// network: progress and safety must be unaffected by equivocation, replay,
// and flooding alone.
func TestByzantineOnlyNoStall(t *testing.T) {
	r, err := NewRunner(Scenario{
		Name:       "byzantine-only",
		Seed:       23,
		Validators: 5,
		Byzantine:  2,
		Behaviors:  BehaviorAll,
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := r.Run()
	if err != nil {
		t.Fatal(err)
	}
	var emitted uint64
	for _, a := range r.Advs {
		emitted += a.Emitted
	}
	if emitted == 0 {
		t.Fatal("adversaries emitted nothing")
	}
	if rep.MinSeq < 3 {
		t.Fatalf("network closed only %d ledgers under attack", rep.MinSeq)
	}
}

// TestFailureReportsSeedAndReplay forces an invariant failure (an
// impossible liveness budget) and checks the error carries everything
// needed to reproduce: seed, schedule, and replay command.
func TestFailureReportsSeedAndReplay(t *testing.T) {
	sc := Scenario{
		Name:            "impossible",
		Seed:            99,
		Validators:      4,
		Faults:          Schedule{{At: 10 * time.Second, Kind: FaultHeal}},
		LivenessLedgers: 1000,
		LivenessWindow:  2 * time.Second,
	}
	_, err := Run(sc, nil)
	if err == nil {
		t.Fatal("impossible liveness budget passed")
	}
	msg := err.Error()
	for _, want := range []string{"seed 99", "liveness", sc.ReplayCommand()} {
		if !strings.Contains(msg, want) {
			t.Fatalf("failure message missing %q:\n%s", want, msg)
		}
	}
}

// TestRunExportsCounters checks the harness's registry series.
func TestRunExportsCounters(t *testing.T) {
	ob := obs.New()
	rep, err := Run(PartitionHealScenario(3), ob)
	if err != nil {
		t.Fatal(err)
	}
	if got := ob.Reg.CounterVec("chaos_scenarios_total", "", "outcome").With("pass").Value(); got != 1 {
		t.Fatalf("chaos_scenarios_total{pass} = %v, want 1", got)
	}
	if got := ob.Reg.CounterVec("chaos_faults_injected_total", "", "kind").With("partition").Value(); got != 1 {
		t.Fatalf("chaos_faults_injected_total{partition} = %v, want 1", got)
	}
	if got := ob.Reg.Counter("chaos_ledgers_closed_total", "").Value(); got != float64(rep.MinSeq) {
		t.Fatalf("chaos_ledgers_closed_total = %v, want %d", got, rep.MinSeq)
	}
	if got := ob.Reg.Counter("chaos_adversary_packets_total", "").Value(); got != float64(rep.AdversaryPackets) {
		t.Fatalf("chaos_adversary_packets_total = %v, want %d", got, rep.AdversaryPackets)
	}
}

// TestRunsAreDeterministic: identical seeds must produce identical runs —
// the property the replay command relies on.
func TestRunsAreDeterministic(t *testing.T) {
	a, err := Run(PartitionHealScenario(5), nil)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(PartitionHealScenario(5), nil)
	if err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() || a.NetStats != b.NetStats {
		t.Fatalf("replay diverged:\n  %s\n  %+v\nvs\n  %s\n  %+v", a, a.NetStats, b, b.NetStats)
	}
}
