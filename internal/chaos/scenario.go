package chaos

import (
	"fmt"
	"math/rand"
	"time"

	"stellar/internal/obs/slo"
)

// Topology selects how validators' quorum sets are shaped.
type Topology string

// Topologies.
const (
	// TopologyFlat gives every validator one flat slice over all nodes
	// (honest and Byzantine) with a threshold high enough that any two
	// quorums intersect in more than the Byzantine count — the §3.1
	// precondition for the honest nodes to form an intact set.
	TopologyFlat Topology = "flat"
	// TopologyTiered groups validators into organizations of three and
	// synthesizes the nested §6.1 quorum sets (51% per org, 67% across
	// orgs); Byzantine validators are spread at most one per org.
	TopologyTiered Topology = "tiered"
)

// Scenario is a complete chaos experiment: a network shape, a fault
// schedule, an adversary contingent, and the invariant budget. The zero
// value of every field selects a sensible default.
type Scenario struct {
	// Name labels the scenario in reports.
	Name string
	// Seed drives every random choice (network build, fault outcomes,
	// adversary behavior); a scenario replays exactly from its seed.
	Seed int64
	// Topology shapes the quorum sets.
	Topology Topology
	// Validators is the number of honest validators (default 5).
	Validators int
	// Byzantine is the number of adversary nodes (default 0). They hold
	// real keypairs and appear in every honest validator's quorum set.
	Byzantine int
	// Behaviors selects adversary attacks (default BehaviorAll).
	Behaviors Behavior
	// Accounts is the synthetic ledger population (default 200 — small:
	// chaos runs stress consensus, not the transaction engine).
	Accounts int
	// TxRate is offered load in tx/s (default 10).
	TxRate float64
	// LedgerInterval is the close cadence (default 5 s).
	LedgerInterval time.Duration
	// Faults is the scripted schedule. The network must be fully healed
	// by the last fault: the liveness-recovery window starts there.
	Faults Schedule
	// LivenessLedgers (K) is how many further ledgers every honest node
	// must close after the last fault heals (default 3).
	LivenessLedgers int
	// LivenessWindow bounds the virtual time allowed for that recovery
	// (default 60 s — twelve ledger cadences).
	LivenessWindow time.Duration
	// Tick is how often invariants are checked (default 500 ms).
	Tick time.Duration
	// AntiEntropy is the rebroadcast cadence (default 2 s) — the §6
	// lesson: validators keep helping peers finish previous ledgers.
	AntiEntropy time.Duration
	// ArchiveDirFor gives validator i a private history archive at the
	// returned directory ("" = none). Required by FaultKillWipe and
	// FaultRejoin: peers need archives to serve network catchup from, and
	// the victim needs one to fetch (or restore) into.
	ArchiveDirFor func(i int) string
	// CheckpointInterval is the archiving cadence in ledgers (0 = every
	// ledger — what rejoin scenarios want, so a checkpoint always exists).
	CheckpointInterval int
	// Replay overrides the replay command printed on failure.
	Replay string
	// Trace attaches a causal span tracer to the honest validators; the
	// report then carries a per-phase latency decomposition (Report.Phases).
	Trace bool

	// Alerts attaches a per-validator SLO engine (internal/obs/slo) fed by
	// per-tick registry samples, making detection itself a tested
	// invariant. Implied by ExpectAlerts, NoAlerts, or BundleDir.
	Alerts bool
	// ExpectAlerts are detection assertions checked at end of run.
	ExpectAlerts []AlertExpectation
	// NoAlerts asserts no alert ever fired on any honest node — the
	// false-positive guard for fault-free soaks.
	NoAlerts bool
	// BundleDir, when set, attaches a flight recorder to every honest
	// node: a close-stall alert firing dumps a crash bundle there
	// (Report.Bundles lists the directories).
	BundleDir string
}

// AlertExpectation asserts one alert's behavior across a scenario.
type AlertExpectation struct {
	// Alert names the rule (slo.RuleCloseStall etc.).
	Alert string
	// MustFire requires the alert to have fired on at least one honest
	// node at some point during the run.
	MustFire bool
	// MustResolve requires the alert to not be firing on any honest node
	// when the run ends (after heal and liveness recovery).
	MustResolve bool
}

func (sc *Scenario) defaults() {
	if sc.Name == "" {
		sc.Name = fmt.Sprintf("seed-%d", sc.Seed)
	}
	if sc.Topology == "" {
		sc.Topology = TopologyFlat
	}
	if sc.Validators == 0 {
		sc.Validators = 5
	}
	if sc.Byzantine > 0 && sc.Behaviors == 0 {
		sc.Behaviors = BehaviorAll
	}
	if sc.Accounts == 0 {
		sc.Accounts = 200
	}
	if sc.TxRate == 0 {
		sc.TxRate = 10
	}
	if sc.LedgerInterval == 0 {
		sc.LedgerInterval = 5 * time.Second
	}
	if sc.LivenessLedgers == 0 {
		sc.LivenessLedgers = 3
	}
	if sc.LivenessWindow == 0 {
		sc.LivenessWindow = 60 * time.Second
	}
	if sc.Tick == 0 {
		sc.Tick = 500 * time.Millisecond
	}
	if sc.AntiEntropy == 0 {
		sc.AntiEntropy = 2 * time.Second
	}
	if len(sc.ExpectAlerts) > 0 || sc.NoAlerts || sc.BundleDir != "" {
		sc.Alerts = true
	}
}

// ReplayCommand returns the command that reproduces this scenario.
func (sc *Scenario) ReplayCommand() string {
	if sc.Replay != "" {
		return sc.Replay
	}
	return fmt.Sprintf("go run ./cmd/stellar-chaos -seed %d", sc.Seed)
}

// PartitionHealScenario is the acceptance scenario of the chaos harness: a
// quorum-intersecting flat topology with one Byzantine equivocator gets
// partitioned into a majority and a minority side (the adversary straddles
// both — it forwards nothing, so the partition is real, but it can tell
// each side a different story), then heals. Safety must hold throughout
// and every honest node must close ledgers again after the heal. The split
// point varies with the seed.
func PartitionHealScenario(seed int64) Scenario {
	rng := rand.New(rand.NewSource(seed))
	const validators = 5
	perm := rng.Perm(validators)
	cut := 2 + rng.Intn(2) // a 2/3 or 3/2 split; one side plus the adversary can still form a quorum
	groups := [][]int{perm[:cut], perm[cut:]}
	return Scenario{
		Name:       "partition-byzantine-heal",
		Seed:       seed,
		Topology:   TopologyFlat,
		Validators: validators,
		Byzantine:  1,
		Behaviors:  BehaviorEquivocate | BehaviorReplay,
		TxRate:     8,
		Faults: Schedule{
			{At: 12 * time.Second, Kind: FaultPartition, Groups: groups},
			{At: 42 * time.Second, Kind: FaultHeal},
		},
		Replay: fmt.Sprintf("go run ./cmd/stellar-chaos -scenario partition-heal -seed %d", seed),
	}
}

// KillWipeRejoinScenario is the durable-state acceptance scenario
// (DESIGN.md §16): five validators, each archiving to a private data dir
// (dirFor supplies the directories), lose three at once — enough that
// consensus stalls and the detection layer must fire close-stall and
// quorum-unavailable. The two bystanders later restart with their
// in-memory state intact; the victim comes back as a brand-new process
// that either lost its disk too (wipe=true: it cold-starts by fetching a
// peer's archive over the network) or kept it (wipe=false: it restores
// from its own archive and replays). Reconvergence is byte-identical by
// construction: the invariant checker compares every header hash the
// rejoined node re-closes against the canon the network externalized,
// and the alerts must have resolved by the end of the liveness window.
func KillWipeRejoinScenario(seed int64, wipe bool, dirFor func(i int) string) Scenario {
	rng := rand.New(rand.NewSource(seed))
	const validators = 5
	perm := rng.Perm(validators)
	victim, down1, down2 := perm[0], perm[1], perm[2]
	name := "kill-restore-rejoin"
	victimKill := FaultCrash
	if wipe {
		name = "kill-wipe-rejoin"
		victimKill = FaultKillWipe
	}
	return Scenario{
		Name:       name,
		Seed:       seed,
		Topology:   TopologyFlat,
		Validators: validators,
		TxRate:     8,
		// Checkpoint every ledger so the bystanders always hold a
		// checkpoint at the stall tip for the victim to fetch or restore.
		ArchiveDirFor:      dirFor,
		CheckpointInterval: 1,
		Faults: Schedule{
			// Three of five down: below the flat 3-of-5 threshold, so the
			// survivors stall and their detection stacks light up.
			{At: 12 * time.Second, Kind: victimKill, Node: victim},
			{At: 12 * time.Second, Kind: FaultCrash, Node: down1},
			{At: 12 * time.Second, Kind: FaultCrash, Node: down2},
			// Bystanders return warm; quorum (4 of 5) re-forms without the
			// victim, so ledgers close again while it is still gone.
			{At: 44 * time.Second, Kind: FaultRestart, Node: down1},
			{At: 44 * time.Second, Kind: FaultRestart, Node: down2},
			// The victim returns as a fresh process and must rejoin via
			// disk restore or network catchup, then reconverge.
			{At: 52 * time.Second, Kind: FaultRejoin, Node: victim},
		},
		ExpectAlerts: []AlertExpectation{
			{Alert: slo.RuleCloseStall, MustFire: true, MustResolve: true},
			{Alert: slo.RuleQuorumUnavailable, MustFire: true, MustResolve: true},
		},
		LivenessLedgers: 3,
		LivenessWindow:  90 * time.Second,
		Replay:          fmt.Sprintf("go run ./cmd/stellar-chaos -scenario %s -seed %d", name, seed),
	}
}

// Generate builds a randomized scenario from a seed: topology, adversary
// contingent, and a fault schedule of partitions, crashes, loss and
// latency windows, all drawn deterministically. The generated schedule
// always restores everything it breaks, so the liveness-recovery invariant
// is meaningful.
func Generate(seed int64) Scenario {
	rng := rand.New(rand.NewSource(seed))
	sc := Scenario{
		Name: fmt.Sprintf("random-%d", seed),
		Seed: seed,
	}

	// Shape: flat or tiered, with a Byzantine contingent small enough
	// that the honest nodes stay intact (f ≤ (honest−2)/2 keeps quorum
	// intersection honest; see quorumSetFor).
	if rng.Intn(2) == 0 {
		sc.Topology = TopologyTiered
		orgs := 2 + rng.Intn(2) // 2–3 orgs of 3
		total := orgs * 3
		sc.Byzantine = rng.Intn(2) // 0–1
		sc.Validators = total - sc.Byzantine
	} else {
		sc.Topology = TopologyFlat
		sc.Validators = 4 + rng.Intn(4) // 4–7
		maxByz := (sc.Validators - 2) / 2
		if maxByz > 2 {
			maxByz = 2
		}
		sc.Byzantine = rng.Intn(maxByz + 1)
	}
	if sc.Byzantine > 0 {
		behaviors := []Behavior{
			BehaviorEquivocate,
			BehaviorEquivocate | BehaviorReplay,
			BehaviorEquivocate | BehaviorFlood,
			BehaviorAll,
		}
		sc.Behaviors = behaviors[rng.Intn(len(behaviors))]
	}
	sc.TxRate = 5 + rng.Float64()*10

	// Fault windows. Each opens at t and closes 8–18 s later; openings
	// are spaced 6–14 s apart. Crash windows never overlap each other so
	// at most one honest node is down at a time (the partitions already
	// take whole groups offline).
	t := 10 * time.Second
	var end time.Duration
	nfaults := 2 + rng.Intn(4)
	partitioned := false
	crashFree := time.Duration(0)
	for i := 0; i < nfaults; i++ {
		w := 8*time.Second + time.Duration(rng.Int63n(int64(10*time.Second)))
		closeAt := t + w
		if closeAt > end {
			end = closeAt
		}
		switch pick := rng.Intn(5); {
		case pick == 0 && !partitioned:
			perm := rng.Perm(sc.Validators)
			cut := 1 + rng.Intn(sc.Validators-1)
			sc.Faults = append(sc.Faults,
				Fault{At: t, Kind: FaultPartition, Groups: [][]int{perm[:cut], perm[cut:]}},
				Fault{At: closeAt, Kind: FaultHeal})
			partitioned = true
		case pick <= 1 && t >= crashFree:
			victim := rng.Intn(sc.Validators)
			sc.Faults = append(sc.Faults,
				Fault{At: t, Kind: FaultCrash, Node: victim},
				Fault{At: closeAt, Kind: FaultRestart, Node: victim})
			crashFree = closeAt
		case pick == 2:
			sc.Faults = append(sc.Faults,
				Fault{At: t, Kind: FaultDropRate, Rate: 0.1 + rng.Float64()*0.3},
				Fault{At: closeAt, Kind: FaultDropRate, Rate: 0})
		case pick == 3:
			from := rng.Intn(sc.Validators)
			to := rng.Intn(sc.Validators)
			for to == from {
				to = rng.Intn(sc.Validators)
			}
			sc.Faults = append(sc.Faults,
				Fault{At: t, Kind: FaultLinkLoss, From: from, To: to, Rate: 0.4 + rng.Float64()*0.5},
				Fault{At: closeAt, Kind: FaultLinkLoss, From: from, To: to, Rate: 0})
		default:
			sc.Faults = append(sc.Faults,
				Fault{At: t, Kind: FaultLatencySpike, Extra: 50*time.Millisecond + time.Duration(rng.Int63n(int64(300*time.Millisecond)))},
				Fault{At: closeAt, Kind: FaultLatencyRestore})
		}
		t += 6*time.Second + time.Duration(rng.Int63n(int64(8*time.Second)))
	}
	// Terminal heal: restore anything still degraded so the liveness
	// window starts from a clean network.
	sc.Faults = append(sc.Faults, Fault{At: end + time.Second, Kind: FaultHeal})
	return sc
}
