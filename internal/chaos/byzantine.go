package chaos

import (
	"fmt"
	"math/rand"
	"time"

	"stellar/internal/fba"
	"stellar/internal/herder"
	"stellar/internal/overlay"
	"stellar/internal/scp"
	"stellar/internal/simnet"
	"stellar/internal/stellarcrypto"
)

// Behavior is a bitmask of adversary attack modes.
type Behavior int

// Adversary behaviors; combine with |.
const (
	// BehaviorEquivocate sends conflicting, properly signed SCP
	// statements for the same slot and statement sequence number to
	// different halves of the network — the canonical Byzantine attack
	// federated voting must survive (§3.1's "arbitrary behavior").
	BehaviorEquivocate Behavior = 1 << iota
	// BehaviorReplay re-sends stale recorded envelopes: old slots, old
	// statement sequence numbers, long after the network moved on.
	BehaviorReplay
	// BehaviorFlood blasts duplicate and garbage packets to stress the
	// overlay dedup cache and the herder's value validation.
	BehaviorFlood

	// BehaviorAll enables every attack.
	BehaviorAll = BehaviorEquivocate | BehaviorReplay | BehaviorFlood
)

// String names the enabled behaviors.
func (b Behavior) String() string {
	if b == 0 {
		return "none"
	}
	s := ""
	add := func(name string) {
		if s != "" {
			s += "+"
		}
		s += name
	}
	if b&BehaviorEquivocate != 0 {
		add("equivocate")
	}
	if b&BehaviorReplay != 0 {
		add("replay")
	}
	if b&BehaviorFlood != 0 {
		add("flood")
	}
	return s
}

// adversaryRecordCap bounds the replay buffer.
const adversaryRecordCap = 128

// Adversary is a Byzantine node injected at the overlay layer. It holds a
// real validator keypair — its envelopes carry valid signatures and may
// appear in honest nodes' quorum slices (a befouled configuration) — but
// it runs no consensus: it listens to the flood traffic to learn current
// slots and plausible values, then attacks on a timer. It never forwards
// other nodes' packets, so it cannot be used as an honest relay across a
// partition.
type Adversary struct {
	net       *simnet.Network
	keys      stellarcrypto.KeyPair
	id        fba.NodeID
	addr      simnet.Addr
	qset      fba.QuorumSet
	networkID stellarcrypto.Hash
	behaviors Behavior
	rng       *rand.Rand
	interval  time.Duration

	peers    []simnet.Addr
	maxSlot  uint64
	values   []scp.Value     // plausible values observed in nominations
	recorded []*scp.Envelope // replay buffer (FIFO ring)
	seq      uint64
	timer    *simnet.Timer

	// Emitted counts attack packets sent, for reports and metrics.
	Emitted uint64
}

// NewAdversary creates a Byzantine node. qset is the quorum set it
// advertises in its envelopes (typically the same one honest validators
// use, to look legitimate). The rng must be dedicated to this adversary so
// runs stay deterministic.
func NewAdversary(net *simnet.Network, keys stellarcrypto.KeyPair, qset fba.QuorumSet,
	networkID stellarcrypto.Hash, behaviors Behavior, rng *rand.Rand) *Adversary {
	id := fba.NodeIDFromPublicKey(keys.Public)
	a := &Adversary{
		net:       net,
		keys:      keys,
		id:        id,
		addr:      simnet.Addr(id),
		qset:      qset,
		networkID: networkID,
		behaviors: behaviors,
		rng:       rng,
		interval:  time.Second,
	}
	net.AddNode(a.addr, simnet.HandlerFunc(a.handle))
	return a
}

// ID returns the adversary's node ID (a valid public-key address).
func (a *Adversary) ID() fba.NodeID { return a.id }

// Addr returns the adversary's network address.
func (a *Adversary) Addr() simnet.Addr { return a.addr }

// Connect sets the peers the adversary attacks (and learns from).
func (a *Adversary) Connect(peers ...simnet.Addr) {
	for _, p := range peers {
		if p != a.addr {
			a.peers = append(a.peers, p)
		}
	}
}

// Start arms the attack timer.
func (a *Adversary) Start() {
	a.schedule()
}

func (a *Adversary) schedule() {
	jitter := time.Duration(a.rng.Int63n(int64(a.interval) / 2))
	a.timer = a.net.After(a.addr, a.interval/2+jitter, a.attack)
}

// handle eavesdrops on flood traffic to learn the network's current slot
// and a pool of plausible values; it forwards nothing.
func (a *Adversary) handle(from simnet.Addr, msg any, size int) {
	p, ok := msg.(*overlay.Packet)
	if !ok || p.Kind != overlay.KindEnvelope || p.Envelope == nil {
		return
	}
	env := p.Envelope
	if env.Slot > a.maxSlot {
		a.maxSlot = env.Slot
	}
	for _, v := range env.Statement.Votes {
		a.observeValue(v)
	}
	for _, v := range env.Statement.Accepted {
		a.observeValue(v)
	}
	if len(env.Statement.Ballot.Value) > 0 {
		a.observeValue(env.Statement.Ballot.Value)
	}
	if len(a.recorded) < adversaryRecordCap {
		a.recorded = append(a.recorded, env)
	} else {
		a.recorded[a.rng.Intn(len(a.recorded))] = env
	}
}

func (a *Adversary) observeValue(v scp.Value) {
	if len(v) == 0 {
		return
	}
	if len(a.values) < 32 {
		a.values = append(a.values, v)
		return
	}
	a.values[a.rng.Intn(len(a.values))] = v
}

// attack runs one round of enabled behaviors and re-arms the timer.
func (a *Adversary) attack() {
	if a.behaviors&BehaviorEquivocate != 0 {
		a.equivocate()
	}
	if a.behaviors&BehaviorReplay != 0 {
		a.replay()
	}
	if a.behaviors&BehaviorFlood != 0 {
		a.flood()
	}
	a.schedule()
}

// conflictingValues produces two distinct plausible values: an observed
// value and a mutation of it (same transaction set, shifted close time),
// both of which honest validators can decode and will treat as candidate
// values rather than garbage.
func (a *Adversary) conflictingValues() (scp.Value, scp.Value, bool) {
	if len(a.values) == 0 {
		return nil, nil, false
	}
	base := a.values[a.rng.Intn(len(a.values))]
	sv, err := herder.DecodeValue(base)
	if err != nil {
		return nil, nil, false
	}
	sv.CloseTime += 1 + int64(a.rng.Intn(5))
	return base, sv.Encode(), true
}

// equivocate signs two conflicting statements with the same sequence
// number and sends each to a different half of the peer list. Receivers
// keep whichever arrives first, so different parts of the network hold
// contradictory views of the adversary's vote.
func (a *Adversary) equivocate() {
	if a.maxSlot == 0 || len(a.peers) < 2 {
		return
	}
	va, vb, ok := a.conflictingValues()
	if !ok {
		return
	}
	a.seq++
	slot := a.maxSlot
	envA := a.sign(&scp.Envelope{
		Node: a.id, Slot: slot, Seq: a.seq, QSet: a.qset,
		Statement: scp.Statement{Type: scp.StmtNominate, Votes: []scp.Value{va}},
	})
	envB := a.sign(&scp.Envelope{
		Node: a.id, Slot: slot, Seq: a.seq, QSet: a.qset,
		Statement: scp.Statement{Type: scp.StmtNominate, Votes: []scp.Value{vb}},
	})
	// Occasionally escalate to ballot-protocol equivocation: conflicting
	// PREPARE statements for incompatible ballots at the same counter.
	if a.rng.Intn(3) == 0 {
		a.seq++
		envA = a.sign(&scp.Envelope{
			Node: a.id, Slot: slot, Seq: a.seq, QSet: a.qset,
			Statement: scp.Statement{Type: scp.StmtPrepare, Ballot: scp.Ballot{Counter: 1, Value: va}},
		})
		envB = a.sign(&scp.Envelope{
			Node: a.id, Slot: slot, Seq: a.seq, QSet: a.qset,
			Statement: scp.Statement{Type: scp.StmtPrepare, Ballot: scp.Ballot{Counter: 1, Value: vb}},
		})
	}
	half := len(a.peers) / 2
	for i, p := range a.peers {
		env := envA
		if i >= half {
			env = envB
		}
		a.sendEnvelope(p, env)
	}
}

// replay re-sends a few stale recorded envelopes to random peers.
func (a *Adversary) replay() {
	if len(a.recorded) == 0 {
		return
	}
	for i := 0; i < 1+a.rng.Intn(3); i++ {
		env := a.recorded[a.rng.Intn(len(a.recorded))]
		peer := a.peers[a.rng.Intn(len(a.peers))]
		a.Emitted++
		a.net.Send(a.addr, peer, &overlay.Packet{
			Kind: overlay.KindEnvelope, Envelope: env,
			TTL: overlay.DefaultTTL, Origin: a.addr,
		}, env.WireSize())
	}
}

// flood blasts garbage nominations (valid signature, undecodable value)
// and oversized-TTL duplicates at every peer.
func (a *Adversary) flood() {
	if a.maxSlot == 0 {
		return
	}
	for burst := 0; burst < 4; burst++ {
		junk := make(scp.Value, 8+a.rng.Intn(24))
		a.rng.Read(junk)
		a.seq++
		env := a.sign(&scp.Envelope{
			Node: a.id, Slot: a.maxSlot + uint64(a.rng.Intn(3)), Seq: a.seq, QSet: a.qset,
			Statement: scp.Statement{Type: scp.StmtNominate, Votes: []scp.Value{junk}},
		})
		for _, p := range a.peers {
			a.sendEnvelope(p, env)
			// The same envelope again: must be absorbed by dedup.
			a.sendEnvelope(p, env)
		}
	}
}

func (a *Adversary) sign(env *scp.Envelope) *scp.Envelope {
	env.Signature = a.keys.Secret.Sign(env.SigningPayload())
	return env
}

func (a *Adversary) sendEnvelope(to simnet.Addr, env *scp.Envelope) {
	a.Emitted++
	a.net.Send(a.addr, to, &overlay.Packet{
		Kind: overlay.KindEnvelope, Envelope: env,
		TTL: overlay.DefaultTTL, Origin: a.addr,
	}, env.WireSize())
}

// String describes the adversary for logs.
func (a *Adversary) String() string {
	return fmt.Sprintf("adversary{%s %s}", a.id, a.behaviors)
}
