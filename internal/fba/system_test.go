package fba

import "testing"

// fourNodeSymmetric builds a 4-node network where everyone requires a
// simple majority (3 of 4) including themselves — the classic N=3f+1, f=1
// configuration expressed as FBA.
func fourNodeSymmetric() QuorumSets {
	all := ids("n1", "n2", "n3", "n4")
	qs := make(QuorumSets)
	for _, id := range all {
		q := Majority(all...)
		qs[id] = &q
	}
	return qs
}

func TestIsQuorumSymmetric(t *testing.T) {
	qs := fourNodeSymmetric()
	if !IsQuorum(NewNodeSet("n1", "n2", "n3"), qs) {
		t.Fatal("3 of 4 not a quorum")
	}
	if IsQuorum(NewNodeSet("n1", "n2"), qs) {
		t.Fatal("2 of 4 is a quorum")
	}
	if IsQuorum(NewNodeSet(), qs) {
		t.Fatal("empty set is a quorum")
	}
	if !IsQuorum(NewNodeSet("n1", "n2", "n3", "n4"), qs) {
		t.Fatal("whole network not a quorum")
	}
}

func TestIsQuorumUnknownMember(t *testing.T) {
	qs := fourNodeSymmetric()
	s := NewNodeSet("n1", "n2", "n3", "stranger")
	if IsQuorum(s, qs) {
		t.Fatal("set containing node with unknown qset accepted as quorum")
	}
}

func TestMaxQuorumWithin(t *testing.T) {
	qs := fourNodeSymmetric()
	max := MaxQuorumWithin(NewNodeSet("n1", "n2", "n3", "n4"), qs)
	if len(max) != 4 {
		t.Fatalf("max quorum size %d, want 4", len(max))
	}
	// Remove two nodes: remaining two cannot form a quorum (need 3).
	max = MaxQuorumWithin(NewNodeSet("n1", "n2"), qs)
	if len(max) != 0 {
		t.Fatalf("max quorum in 2 nodes = %s, want empty", max)
	}
}

func TestTransitiveClosure(t *testing.T) {
	// Chain: a → b → c, c self-contained.
	qs := QuorumSets{
		"a": {Threshold: 2, Validators: ids("a", "b")},
		"b": {Threshold: 2, Validators: ids("b", "c")},
		"c": {Threshold: 1, Validators: ids("c")},
	}
	cl := TransitiveClosure("a", qs)
	if !cl.Equal(NewNodeSet("a", "b", "c")) {
		t.Fatalf("closure of a = %s", cl)
	}
	cl = TransitiveClosure("c", qs)
	if !cl.Equal(NewNodeSet("c")) {
		t.Fatalf("closure of c = %s", cl)
	}
}

func TestIntertwinedSymmetric(t *testing.T) {
	qs := fourNodeSymmetric()
	// With one faulty node, any two of the others are intertwined:
	// quorums have ≥3 members, so two quorums overlap in ≥2, at least one
	// of which is non-faulty.
	if !Intertwined("n1", "n2", qs, NewNodeSet("n4")) {
		t.Fatal("n1,n2 not intertwined despite single fault")
	}
	// With two faulty nodes, overlap can be entirely faulty.
	if Intertwined("n1", "n2", qs, NewNodeSet("n3", "n4")) {
		t.Fatal("n1,n2 intertwined despite two faults in 3f+1=4")
	}
}

func TestDisjointQuorumsNotIntertwined(t *testing.T) {
	// Two separate cliques that don't reference each other.
	qs := QuorumSets{
		"a1": {Threshold: 2, Validators: ids("a1", "a2")},
		"a2": {Threshold: 2, Validators: ids("a1", "a2")},
		"b1": {Threshold: 2, Validators: ids("b1", "b2")},
		"b2": {Threshold: 2, Validators: ids("b1", "b2")},
	}
	if Intertwined("a1", "b1", qs, NewNodeSet()) {
		t.Fatal("nodes of disjoint cliques reported intertwined")
	}
	if !Intertwined("a1", "a2", qs, NewNodeSet()) {
		t.Fatal("clique members not intertwined")
	}
}

func TestIsIntactSymmetric(t *testing.T) {
	qs := fourNodeSymmetric()
	all := NewNodeSet("n1", "n2", "n3", "n4")
	if !IsIntact(all, qs, all) {
		t.Fatal("whole healthy network not intact")
	}
	// Any 3 nodes form a quorum, but if the 4th is faulty, two quorums of
	// different members can overlap only in... actually with 3-of-4
	// thresholds, quorums within the 3 remaining nodes must contain all 3
	// (each needs 3 of 4 present), so they are intact.
	if !IsIntact(NewNodeSet("n1", "n2", "n3"), qs, all) {
		t.Fatal("3-node subset not intact despite tolerance f=1")
	}
	if IsIntact(NewNodeSet("n1", "n2"), qs, all) {
		t.Fatal("2-node subset intact (cannot even form a quorum)")
	}
}

func TestMaximalIntactSetsPartition(t *testing.T) {
	qs := fourNodeSymmetric()
	sets := MaximalIntactSets(qs, NewNodeSet())
	if len(sets) != 1 {
		t.Fatalf("healthy symmetric network has %d maximal intact sets, want 1", len(sets))
	}
	if len(sets[0]) != 4 {
		t.Fatalf("maximal intact set size %d, want 4", len(sets[0]))
	}
}

func TestMaximalIntactSetsWithFault(t *testing.T) {
	qs := fourNodeSymmetric()
	sets := MaximalIntactSets(qs, NewNodeSet("n4"))
	if len(sets) != 1 {
		t.Fatalf("got %d maximal intact sets, want 1", len(sets))
	}
	if !sets[0].Equal(NewNodeSet("n1", "n2", "n3")) {
		t.Fatalf("intact set %s, want {n1, n2, n3}", sets[0])
	}
}

func TestMaximalIntactSetsDisjointPartitions(t *testing.T) {
	// The paper: "intact sets define a partition of the well-behaved
	// nodes" — two disjoint cliques give two maximal intact sets.
	qs := QuorumSets{
		"a1": {Threshold: 2, Validators: ids("a1", "a2")},
		"a2": {Threshold: 2, Validators: ids("a1", "a2")},
		"b1": {Threshold: 2, Validators: ids("b1", "b2")},
		"b2": {Threshold: 2, Validators: ids("b1", "b2")},
	}
	sets := MaximalIntactSets(qs, NewNodeSet())
	if len(sets) != 2 {
		t.Fatalf("got %d maximal intact sets, want 2", len(sets))
	}
	for i, s := range sets {
		for j, u := range sets {
			if i != j && s.Intersects(u) {
				t.Fatal("maximal intact sets overlap")
			}
		}
	}
}

// TestFigure2Cascade reproduces the network of paper Figure 2 exactly and
// verifies the cascade: after nodes 1–4 accept X, the v-blocking relation
// pulls in node 5, then nodes 6 and 7.
func TestFigure2Cascade(t *testing.T) {
	// Figure 2 slices (each node has one slice, drawn as arrows):
	//   1: {1,2,3,4}   2: {1,2,3,4}  3: {1,2,3,4}  4: {1,2,3,4}
	//   5: {1,5}  (set {1} is 5-blocking)
	//   6: {5,6,7}  7: {5,6,7}  (set {5} is 6- and 7-blocking)
	one := QuorumSet{Threshold: 4, Validators: ids("1", "2", "3", "4")}
	five := QuorumSet{Threshold: 2, Validators: ids("1", "5")}
	sixSeven := QuorumSet{Threshold: 3, Validators: ids("5", "6", "7")}
	qs := QuorumSets{
		"1": &one, "2": &one, "3": &one, "4": &one,
		"5": &five,
		"6": &sixSeven, "7": &sixSeven,
	}

	// Step (c): {1,2,3,4} is a quorum, so 1 accepts X.
	if !IsQuorum(NewNodeSet("1", "2", "3", "4"), qs) {
		t.Fatal("{1,2,3,4} should be a quorum")
	}
	// Step (d): {1} is 5-blocking.
	if !five.BlockedBy(NewNodeSet("1")) {
		t.Fatal("{1} should be 5-blocking")
	}
	// Step (e): {5} is 6- and 7-blocking.
	if !sixSeven.BlockedBy(NewNodeSet("5")) {
		t.Fatal("{5} should be 6/7-blocking")
	}
	// Full cascade from the initial accepting quorum.
	final := BlockedCascade(NewNodeSet("1", "2", "3", "4"), qs)
	want := NewNodeSet("1", "2", "3", "4", "5", "6", "7")
	if !final.Equal(want) {
		t.Fatalf("cascade reached %s, want %s", final, want)
	}
}

// TestCascadeTheorem spot-checks the cascade theorem (§3.1.2): for an
// intact set I and a quorum Q of a member, expanding Q by v-blocked nodes
// eventually covers all of I.
func TestCascadeTheorem(t *testing.T) {
	qs := fourNodeSymmetric()
	q := NewNodeSet("n1", "n2", "n3") // a quorum
	final := BlockedCascade(q, qs)
	if !final.Equal(NewNodeSet("n1", "n2", "n3", "n4")) {
		t.Fatalf("cascade did not cover intact set: %s", final)
	}
}

func TestBlockedCascadeNoGrowthFromNonBlocking(t *testing.T) {
	qs := fourNodeSymmetric()
	s := NewNodeSet("n1") // not blocking for anyone (3-of-4 needs 2 blocked)
	final := BlockedCascade(s, qs)
	if !final.Equal(s) {
		t.Fatalf("cascade grew from non-blocking seed: %s", final)
	}
}
