// Package fba implements the Federated Byzantine Agreement model of paper
// §3.1: nodes unilaterally declare quorum slices via nested quorum sets, and
// quorums emerge from the combined local configurations.
//
// The central predicates are:
//
//   - QuorumSet.SatisfiedBy(S): S contains at least one of the node's slices
//     ("quorum threshold" reached from the node's point of view).
//   - QuorumSet.BlockedBy(B): B is v-blocking — it intersects every one of
//     the node's slices, so a unanimously faulty B can deny v a quorum.
//   - IsQuorum(S, qsets): S is non-empty and encompasses at least one slice
//     of each member (the FBA definition of quorum).
//
// The package also provides whole-system analysis used by tests and the
// checker in internal/quorum: transitive closure, maximal-quorum fixpoints,
// and exhaustive intactness analysis for small networks.
package fba

import (
	"fmt"
	"sort"
	"strings"

	"stellar/internal/stellarcrypto"
	"stellar/internal/xdr"
)

// NodeID identifies a validator node. In production deployments it is the
// validator's public key address; in simulations it is a readable label.
type NodeID string

// NodeIDFromPublicKey derives the canonical NodeID for a validator key.
func NodeIDFromPublicKey(pk stellarcrypto.PublicKey) NodeID {
	return NodeID(pk.Address())
}

// NodeSet is a set of node IDs.
type NodeSet map[NodeID]struct{}

// NewNodeSet builds a NodeSet from the given IDs.
func NewNodeSet(ids ...NodeID) NodeSet {
	s := make(NodeSet, len(ids))
	for _, id := range ids {
		s[id] = struct{}{}
	}
	return s
}

// Has reports membership.
func (s NodeSet) Has(id NodeID) bool { _, ok := s[id]; return ok }

// Add inserts id.
func (s NodeSet) Add(id NodeID) { s[id] = struct{}{} }

// Remove deletes id.
func (s NodeSet) Remove(id NodeID) { delete(s, id) }

// Copy returns an independent copy.
func (s NodeSet) Copy() NodeSet {
	c := make(NodeSet, len(s))
	for id := range s {
		c[id] = struct{}{}
	}
	return c
}

// Union returns s ∪ t as a new set.
func (s NodeSet) Union(t NodeSet) NodeSet {
	c := s.Copy()
	for id := range t {
		c[id] = struct{}{}
	}
	return c
}

// Intersect returns s ∩ t as a new set.
func (s NodeSet) Intersect(t NodeSet) NodeSet {
	c := make(NodeSet)
	for id := range s {
		if t.Has(id) {
			c[id] = struct{}{}
		}
	}
	return c
}

// Minus returns s \ t as a new set.
func (s NodeSet) Minus(t NodeSet) NodeSet {
	c := make(NodeSet)
	for id := range s {
		if !t.Has(id) {
			c[id] = struct{}{}
		}
	}
	return c
}

// Intersects reports whether s and t share any member.
func (s NodeSet) Intersects(t NodeSet) bool {
	small, large := s, t
	if len(t) < len(s) {
		small, large = t, s
	}
	for id := range small {
		if large.Has(id) {
			return true
		}
	}
	return false
}

// Equal reports set equality.
func (s NodeSet) Equal(t NodeSet) bool {
	if len(s) != len(t) {
		return false
	}
	for id := range s {
		if !t.Has(id) {
			return false
		}
	}
	return true
}

// Subset reports whether s ⊆ t.
func (s NodeSet) Subset(t NodeSet) bool {
	for id := range s {
		if !t.Has(id) {
			return false
		}
	}
	return true
}

// Sorted returns the members in lexicographic order, for deterministic
// iteration and display.
func (s NodeSet) Sorted() []NodeID {
	out := make([]NodeID, 0, len(s))
	for id := range s {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// String renders the set as {a, b, c}.
func (s NodeSet) String() string {
	ids := s.Sorted()
	parts := make([]string, len(ids))
	for i, id := range ids {
		parts[i] = string(id)
	}
	return "{" + strings.Join(parts, ", ") + "}"
}

// QuorumSet is Stellar's nested quorum-set representation of a node's quorum
// slices (paper §6.1): n entries and a threshold k, where any k entries
// constitute a quorum slice. Entries are validators or, recursively, inner
// quorum sets.
type QuorumSet struct {
	Threshold  int
	Validators []NodeID
	InnerSets  []QuorumSet
}

// Majority builds the common "simple majority of these nodes" quorum set:
// threshold ⌈(n+1)/2⌉ over the given validators.
func Majority(ids ...NodeID) QuorumSet {
	return QuorumSet{Threshold: len(ids)/2 + 1, Validators: ids}
}

// All builds a unanimous quorum set over the given validators.
func All(ids ...NodeID) QuorumSet {
	return QuorumSet{Threshold: len(ids), Validators: ids}
}

// PercentThreshold computes the threshold for "at least pct percent of n
// entries", rounding so that e.g. 51% of 3 is 2 and 67% of 3 is 3 —
// matching stellar-core's convention of guaranteeing a strict supermajority.
func PercentThreshold(n, pct int) int {
	t := 1 + (n*pct-1)/100
	if t > n {
		t = n
	}
	if t < 1 {
		t = 1
	}
	return t
}

// Size returns the number of top-level entries (validators + inner sets).
func (q *QuorumSet) Size() int { return len(q.Validators) + len(q.InnerSets) }

// Validate checks structural sanity: thresholds within [1, size] at every
// level, no duplicate validators within one set, and depth ≤ maxDepth.
func (q *QuorumSet) Validate() error { return q.validate(0) }

const maxQuorumSetDepth = 4

func (q *QuorumSet) validate(depth int) error {
	if depth > maxQuorumSetDepth {
		return fmt.Errorf("fba: quorum set nesting deeper than %d", maxQuorumSetDepth)
	}
	n := q.Size()
	if n == 0 {
		return fmt.Errorf("fba: empty quorum set")
	}
	if q.Threshold < 1 || q.Threshold > n {
		return fmt.Errorf("fba: threshold %d out of range [1,%d]", q.Threshold, n)
	}
	seen := make(map[NodeID]struct{}, len(q.Validators))
	for _, v := range q.Validators {
		if _, dup := seen[v]; dup {
			return fmt.Errorf("fba: duplicate validator %s in quorum set", v)
		}
		seen[v] = struct{}{}
	}
	for i := range q.InnerSets {
		if err := q.InnerSets[i].validate(depth + 1); err != nil {
			return err
		}
	}
	return nil
}

// SatisfiedBy reports whether the node set S contains at least one quorum
// slice of this quorum set: at least Threshold entries are present, where a
// validator entry is present iff it is in S and an inner set entry is
// present iff it is recursively satisfied.
func (q *QuorumSet) SatisfiedBy(s NodeSet) bool {
	return q.satisfied(s.Has)
}

// SatisfiedByFunc is SatisfiedBy with a membership predicate, letting
// callers avoid materializing a set.
func (q *QuorumSet) SatisfiedByFunc(has func(NodeID) bool) bool {
	return q.satisfied(has)
}

func (q *QuorumSet) satisfied(has func(NodeID) bool) bool {
	count := 0
	for _, v := range q.Validators {
		if has(v) {
			count++
			if count >= q.Threshold {
				return true
			}
		}
	}
	for i := range q.InnerSets {
		if q.InnerSets[i].satisfied(has) {
			count++
			if count >= q.Threshold {
				return true
			}
		}
	}
	return false
}

// BlockedBy reports whether B is v-blocking for a node with this quorum
// set: B intersects every slice. Equivalently, strictly more than
// size−threshold entries are blocked, so the threshold can no longer be met
// without a member of B.
func (q *QuorumSet) BlockedBy(b NodeSet) bool {
	return q.blocked(b.Has)
}

// BlockedByFunc is BlockedBy with a membership predicate.
func (q *QuorumSet) BlockedByFunc(bad func(NodeID) bool) bool {
	return q.blocked(bad)
}

func (q *QuorumSet) blocked(bad func(NodeID) bool) bool {
	need := q.Size() - q.Threshold + 1 // entries that must be blocked
	count := 0
	for _, v := range q.Validators {
		if bad(v) {
			count++
			if count >= need {
				return true
			}
		}
	}
	for i := range q.InnerSets {
		if q.InnerSets[i].blocked(bad) {
			count++
			if count >= need {
				return true
			}
		}
	}
	return false
}

// Members returns every node mentioned anywhere in the quorum set.
func (q *QuorumSet) Members() NodeSet {
	s := make(NodeSet)
	q.addMembers(s)
	return s
}

func (q *QuorumSet) addMembers(s NodeSet) {
	for _, v := range q.Validators {
		s.Add(v)
	}
	for i := range q.InnerSets {
		q.InnerSets[i].addMembers(s)
	}
}

// Slices enumerates every minimal quorum slice of the quorum set. Only safe
// for small configurations (test and analysis use); the count is
// combinatorial in general.
func (q *QuorumSet) Slices() []NodeSet {
	entries := make([][]NodeSet, 0, q.Size())
	for _, v := range q.Validators {
		entries = append(entries, []NodeSet{NewNodeSet(v)})
	}
	for i := range q.InnerSets {
		entries = append(entries, q.InnerSets[i].Slices())
	}
	var out []NodeSet
	var choose func(start, picked int, acc NodeSet)
	choose = func(start, picked int, acc NodeSet) {
		if picked == q.Threshold {
			out = append(out, acc.Copy())
			return
		}
		// Not enough entries left to reach the threshold.
		if len(entries)-start < q.Threshold-picked {
			return
		}
		for i := start; i < len(entries); i++ {
			for _, slice := range entries[i] {
				choose(i+1, picked+1, acc.Union(slice))
			}
		}
	}
	choose(0, 0, make(NodeSet))
	return dedupeSets(out)
}

func dedupeSets(sets []NodeSet) []NodeSet {
	seen := make(map[string]struct{}, len(sets))
	out := sets[:0]
	for _, s := range sets {
		key := s.String()
		if _, dup := seen[key]; dup {
			continue
		}
		seen[key] = struct{}{}
		out = append(out, s)
	}
	return out
}

// Hash returns the content hash of the quorum set. SCP envelopes carry the
// sender's quorum set (or its hash) so that quorums can be discovered from
// messages alone (paper §3.1).
func (q *QuorumSet) Hash() stellarcrypto.Hash {
	e := xdr.NewEncoder(64)
	q.EncodeXDR(e)
	return stellarcrypto.HashBytes(e.Bytes())
}

// EncodeXDR writes the canonical encoding. Validators are sorted so that
// structurally equal sets hash identically.
func (q *QuorumSet) EncodeXDR(e *xdr.Encoder) {
	e.PutUint32(uint32(q.Threshold))
	vals := make([]string, len(q.Validators))
	for i, v := range q.Validators {
		vals[i] = string(v)
	}
	sort.Strings(vals)
	e.PutUint32(uint32(len(vals)))
	for _, v := range vals {
		e.PutString(v)
	}
	e.PutUint32(uint32(len(q.InnerSets)))
	for i := range q.InnerSets {
		q.InnerSets[i].EncodeXDR(e)
	}
}

// DecodeQuorumSetXDR reads a quorum set written by EncodeXDR. Nesting is
// bounded by the same maxQuorumSetDepth that Validate enforces, so
// hostile inputs cannot drive unbounded recursion.
func DecodeQuorumSetXDR(d *xdr.Decoder) (QuorumSet, error) {
	return decodeQuorumSetXDR(d, 0)
}

func decodeQuorumSetXDR(d *xdr.Decoder, depth int) (QuorumSet, error) {
	var q QuorumSet
	if depth > maxQuorumSetDepth {
		return q, fmt.Errorf("fba: quorum set nesting exceeds %d levels", maxQuorumSetDepth)
	}
	t, err := d.Uint32()
	if err != nil {
		return q, err
	}
	q.Threshold = int(t)
	nv, err := d.Uint32()
	if err != nil {
		return q, err
	}
	if nv > 10000 {
		return q, fmt.Errorf("fba: quorum set with %d validators", nv)
	}
	for i := uint32(0); i < nv; i++ {
		s, err := d.String()
		if err != nil {
			return q, err
		}
		q.Validators = append(q.Validators, NodeID(s))
	}
	ni, err := d.Uint32()
	if err != nil {
		return q, err
	}
	if ni > 1000 {
		return q, fmt.Errorf("fba: quorum set with %d inner sets", ni)
	}
	for i := uint32(0); i < ni; i++ {
		in, err := decodeQuorumSetXDR(d, depth+1)
		if err != nil {
			return q, err
		}
		q.InnerSets = append(q.InnerSets, in)
	}
	return q, nil
}

// String renders the quorum set compactly, e.g. "2-of-{a, b, c}".
func (q *QuorumSet) String() string {
	parts := make([]string, 0, q.Size())
	for _, v := range q.Validators {
		parts = append(parts, string(v))
	}
	for i := range q.InnerSets {
		parts = append(parts, q.InnerSets[i].String())
	}
	return fmt.Sprintf("%d-of-{%s}", q.Threshold, strings.Join(parts, ", "))
}

// Weight returns the fraction of this node's quorum slices that contain v,
// used by federated leader selection (paper §3.2.5). For a flat threshold-k
// of n set, the fraction of k-subsets containing a given member is k/n; for
// nested sets the fractions multiply down the branch containing v.
func (q *QuorumSet) Weight(v NodeID) float64 {
	n := float64(q.Size())
	if n == 0 {
		return 0
	}
	frac := float64(q.Threshold) / n
	for _, val := range q.Validators {
		if val == v {
			return frac
		}
	}
	for i := range q.InnerSets {
		if w := q.InnerSets[i].Weight(v); w > 0 {
			return frac * w
		}
	}
	return 0
}
