package fba

import (
	"testing"
	"testing/quick"

	"stellar/internal/stellarcrypto"
	"stellar/internal/xdr"
)

func ids(names ...string) []NodeID {
	out := make([]NodeID, len(names))
	for i, n := range names {
		out[i] = NodeID(n)
	}
	return out
}

func TestNodeSetBasics(t *testing.T) {
	s := NewNodeSet("a", "b")
	if !s.Has("a") || s.Has("c") {
		t.Fatal("membership wrong")
	}
	s.Add("c")
	s.Remove("a")
	if s.Has("a") || !s.Has("c") {
		t.Fatal("add/remove wrong")
	}
	u := NewNodeSet("x").Union(NewNodeSet("y"))
	if len(u) != 2 {
		t.Fatal("union wrong")
	}
	i := NewNodeSet("x", "y").Intersect(NewNodeSet("y", "z"))
	if !i.Equal(NewNodeSet("y")) {
		t.Fatal("intersect wrong")
	}
	m := NewNodeSet("x", "y").Minus(NewNodeSet("y"))
	if !m.Equal(NewNodeSet("x")) {
		t.Fatal("minus wrong")
	}
	if !NewNodeSet("a").Subset(NewNodeSet("a", "b")) {
		t.Fatal("subset wrong")
	}
	if NewNodeSet("a", "z").Subset(NewNodeSet("a", "b")) {
		t.Fatal("subset false positive")
	}
	if !NewNodeSet("a", "b").Intersects(NewNodeSet("b", "c")) {
		t.Fatal("intersects wrong")
	}
	if NewNodeSet("a").Intersects(NewNodeSet("b")) {
		t.Fatal("intersects false positive")
	}
}

func TestNodeSetSortedDeterministic(t *testing.T) {
	s := NewNodeSet("c", "a", "b")
	got := s.Sorted()
	if got[0] != "a" || got[1] != "b" || got[2] != "c" {
		t.Fatalf("sorted = %v", got)
	}
	if s.String() != "{a, b, c}" {
		t.Fatalf("string = %s", s.String())
	}
}

func TestMajorityAndAll(t *testing.T) {
	m := Majority(ids("a", "b", "c", "d")...)
	if m.Threshold != 3 {
		t.Fatalf("majority of 4 threshold = %d", m.Threshold)
	}
	a := All(ids("a", "b")...)
	if a.Threshold != 2 {
		t.Fatalf("all of 2 threshold = %d", a.Threshold)
	}
}

func TestPercentThreshold(t *testing.T) {
	cases := []struct{ n, pct, want int }{
		{3, 51, 2},
		{3, 67, 3},
		{4, 51, 3},
		{5, 51, 3},
		{6, 67, 5},
		{1, 100, 1},
		{3, 100, 3},
		{10, 51, 6},
	}
	for _, c := range cases {
		if got := PercentThreshold(c.n, c.pct); got != c.want {
			t.Errorf("PercentThreshold(%d,%d) = %d, want %d", c.n, c.pct, got, c.want)
		}
	}
}

func TestQuorumSetValidate(t *testing.T) {
	good := Majority(ids("a", "b", "c")...)
	if err := good.Validate(); err != nil {
		t.Fatalf("valid set rejected: %v", err)
	}
	bad := QuorumSet{Threshold: 0, Validators: ids("a")}
	if err := bad.Validate(); err == nil {
		t.Fatal("threshold 0 accepted")
	}
	bad = QuorumSet{Threshold: 3, Validators: ids("a", "b")}
	if err := bad.Validate(); err == nil {
		t.Fatal("threshold > size accepted")
	}
	bad = QuorumSet{Threshold: 1}
	if err := bad.Validate(); err == nil {
		t.Fatal("empty set accepted")
	}
	bad = QuorumSet{Threshold: 1, Validators: ids("a", "a")}
	if err := bad.Validate(); err == nil {
		t.Fatal("duplicate validator accepted")
	}
}

func TestSatisfiedByFlat(t *testing.T) {
	q := Majority(ids("a", "b", "c")...) // 2 of 3
	if !q.SatisfiedBy(NewNodeSet("a", "b")) {
		t.Fatal("2 of 3 not satisfied by 2")
	}
	if q.SatisfiedBy(NewNodeSet("a")) {
		t.Fatal("2 of 3 satisfied by 1")
	}
	if !q.SatisfiedBy(NewNodeSet("a", "b", "c", "z")) {
		t.Fatal("superset not satisfying")
	}
}

func TestSatisfiedByNested(t *testing.T) {
	// 2-of-{orgA(2-of-3), orgB(2-of-3), orgC(2-of-3)}: the paper's
	// organization grouping (Fig 6).
	orgA := Majority(ids("a1", "a2", "a3")...)
	orgB := Majority(ids("b1", "b2", "b3")...)
	orgC := Majority(ids("c1", "c2", "c3")...)
	q := QuorumSet{Threshold: 2, InnerSets: []QuorumSet{orgA, orgB, orgC}}

	if !q.SatisfiedBy(NewNodeSet("a1", "a2", "b1", "b2")) {
		t.Fatal("two full orgs should satisfy")
	}
	if q.SatisfiedBy(NewNodeSet("a1", "a2", "b1")) {
		t.Fatal("one org plus a fragment should not satisfy")
	}
	if q.SatisfiedBy(NewNodeSet("a1", "b1", "c1")) {
		t.Fatal("fragments of three orgs should not satisfy")
	}
}

func TestBlockedByFlat(t *testing.T) {
	q := Majority(ids("a", "b", "c", "d")...) // 3 of 4: blocking needs 2
	if q.BlockedBy(NewNodeSet("a")) {
		t.Fatal("single node blocks 3-of-4")
	}
	if !q.BlockedBy(NewNodeSet("a", "b")) {
		t.Fatal("two nodes do not block 3-of-4")
	}
}

func TestBlockedByNested(t *testing.T) {
	orgA := Majority(ids("a1", "a2", "a3")...)
	orgB := Majority(ids("b1", "b2", "b3")...)
	q := QuorumSet{Threshold: 2, InnerSets: []QuorumSet{orgA, orgB}}
	// Blocking one org (2 of its 3 nodes) blocks the whole set
	// (threshold 2 of 2 entries → need to block 1 entry).
	if !q.BlockedBy(NewNodeSet("a1", "a2")) {
		t.Fatal("blocked org does not block 2-of-2")
	}
	if q.BlockedBy(NewNodeSet("a1", "b1")) {
		t.Fatal("single nodes from each org should not block")
	}
}

// blockedByIsSliceIntersection cross-checks BlockedBy against the
// definition: B is v-blocking iff B intersects every slice.
func TestBlockedMatchesSliceIntersection(t *testing.T) {
	orgA := Majority(ids("a1", "a2", "a3")...)
	orgB := Majority(ids("b1", "b2")...)
	q := QuorumSet{Threshold: 2, Validators: ids("x"), InnerSets: []QuorumSet{orgA, orgB}}
	slices := q.Slices()
	members := q.Members().Sorted()
	for mask := 0; mask < 1<<len(members); mask++ {
		b := make(NodeSet)
		for i, m := range members {
			if mask&(1<<i) != 0 {
				b.Add(m)
			}
		}
		intersectsAll := true
		for _, s := range slices {
			if !s.Intersects(b) {
				intersectsAll = false
				break
			}
		}
		if got := q.BlockedBy(b); got != intersectsAll {
			t.Fatalf("BlockedBy(%s)=%v, slice-intersection=%v", b, got, intersectsAll)
		}
	}
}

func TestSlicesFlat(t *testing.T) {
	q := Majority(ids("a", "b", "c")...) // 2 of 3 → 3 slices
	slices := q.Slices()
	if len(slices) != 3 {
		t.Fatalf("got %d slices, want 3", len(slices))
	}
	for _, s := range slices {
		if len(s) != 2 {
			t.Fatalf("slice %s has size %d, want 2", s, len(s))
		}
	}
}

func TestSlicesSatisfiedByConsistency(t *testing.T) {
	// Every set satisfies the qset iff it contains some enumerated slice.
	orgA := Majority(ids("a1", "a2")...)
	q := QuorumSet{Threshold: 2, Validators: ids("x", "y"), InnerSets: []QuorumSet{orgA}}
	slices := q.Slices()
	members := q.Members().Sorted()
	for mask := 0; mask < 1<<len(members); mask++ {
		s := make(NodeSet)
		for i, m := range members {
			if mask&(1<<i) != 0 {
				s.Add(m)
			}
		}
		containsSlice := false
		for _, sl := range slices {
			if sl.Subset(s) {
				containsSlice = true
				break
			}
		}
		if got := q.SatisfiedBy(s); got != containsSlice {
			t.Fatalf("SatisfiedBy(%s)=%v, contains-slice=%v", s, got, containsSlice)
		}
	}
}

func TestQuorumSetHashDeterministic(t *testing.T) {
	a := Majority(ids("a", "b", "c")...)
	b := Majority(ids("c", "b", "a")...) // different order, same set
	if a.Hash() != b.Hash() {
		t.Fatal("hash depends on validator order")
	}
	c := Majority(ids("a", "b", "d")...)
	if a.Hash() == c.Hash() {
		t.Fatal("different sets hash equal")
	}
}

func TestQuorumSetXDRRoundTrip(t *testing.T) {
	orgA := Majority(ids("a1", "a2", "a3")...)
	q := QuorumSet{Threshold: 2, Validators: ids("x"), InnerSets: []QuorumSet{orgA}}
	e := xdr.NewEncoder(0)
	q.EncodeXDR(e)
	d := xdr.NewDecoder(e.Bytes())
	back, err := DecodeQuorumSetXDR(d)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if back.Hash() != q.Hash() {
		t.Fatal("round trip changed hash")
	}
}

func TestWeightFlat(t *testing.T) {
	q := Majority(ids("a", "b", "c", "d")...) // 3 of 4
	if w := q.Weight("a"); w != 0.75 {
		t.Fatalf("weight = %v, want 0.75", w)
	}
	if w := q.Weight("zzz"); w != 0 {
		t.Fatalf("weight of non-member = %v", w)
	}
}

func TestWeightNested(t *testing.T) {
	orgA := Majority(ids("a1", "a2", "a3")...) // 2 of 3 → member weight 2/3
	q := QuorumSet{Threshold: 1, InnerSets: []QuorumSet{orgA}, Validators: ids("x")}
	// Top level: 1 of 2 entries → frac 1/2; nested a1: 1/2 * 2/3 = 1/3.
	if w := q.Weight("a1"); w < 0.333 || w > 0.334 {
		t.Fatalf("nested weight = %v, want 1/3", w)
	}
	if w := q.Weight("x"); w != 0.5 {
		t.Fatalf("validator weight = %v, want 0.5", w)
	}
}

func TestNodeIDFromPublicKey(t *testing.T) {
	kp := stellarcrypto.KeyPairFromString("node")
	id := NodeIDFromPublicKey(kp.Public)
	if id == "" || id[0] != 'G' {
		t.Fatalf("node id %q not an address", id)
	}
}

func TestPropertySatisfiedMonotone(t *testing.T) {
	// If S satisfies q then any superset of S satisfies q.
	q := QuorumSet{
		Threshold:  2,
		Validators: ids("a", "b", "c"),
		InnerSets:  []QuorumSet{Majority(ids("d", "e", "f")...)},
	}
	members := q.Members().Sorted()
	f := func(mask, extra uint8) bool {
		s := make(NodeSet)
		for i, m := range members {
			if mask&(1<<i) != 0 {
				s.Add(m)
			}
		}
		super := s.Copy()
		for i, m := range members {
			if extra&(1<<i) != 0 {
				super.Add(m)
			}
		}
		if q.SatisfiedBy(s) && !q.SatisfiedBy(super) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyBlockedAntiMonotone(t *testing.T) {
	// If B blocks q then any superset of B blocks q.
	q := QuorumSet{
		Threshold:  2,
		Validators: ids("a", "b", "c"),
		InnerSets:  []QuorumSet{Majority(ids("d", "e", "f")...)},
	}
	members := q.Members().Sorted()
	f := func(mask, extra uint8) bool {
		b := make(NodeSet)
		for i, m := range members {
			if mask&(1<<i) != 0 {
				b.Add(m)
			}
		}
		super := b.Copy()
		for i, m := range members {
			if extra&(1<<i) != 0 {
				super.Add(m)
			}
		}
		if q.BlockedBy(b) && !q.BlockedBy(super) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertySatisfiedAndBlockedDual(t *testing.T) {
	// A set and its complement cannot both fail: if S does not satisfy q,
	// then complement(S) blocks q (because every slice must intersect the
	// complement). Conversely if S satisfies q, complement(S) does not
	// block it... actually both can hold for overlapping structures; the
	// dual we verify: S satisfies q ⟺ complement(S) does NOT block q.
	q := QuorumSet{
		Threshold:  2,
		Validators: ids("a", "b"),
		InnerSets:  []QuorumSet{Majority(ids("c", "d", "e")...)},
	}
	members := q.Members().Sorted()
	for mask := 0; mask < 1<<len(members); mask++ {
		s := make(NodeSet)
		for i, m := range members {
			if mask&(1<<i) != 0 {
				s.Add(m)
			}
		}
		comp := q.Members().Minus(s)
		if q.SatisfiedBy(s) == q.BlockedBy(comp) {
			t.Fatalf("duality violated for %s: satisfied=%v blockedByComp=%v",
				s, q.SatisfiedBy(s), q.BlockedBy(comp))
		}
	}
}
