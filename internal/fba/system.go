package fba

// System-level FBA analysis: quorums that emerge from a collection of nodes'
// quorum sets, transitive closures, and (for small networks) exhaustive
// intertwined/intact classification used to validate protocol properties.

// QuorumSets maps every known node to its declared quorum set. Nodes learn
// each other's sets from SCP envelopes; analysis tools read them from
// configuration.
type QuorumSets map[NodeID]*QuorumSet

// IsQuorum reports whether S is a quorum under the FBA definition: S is
// non-empty and every member of S (that has a known quorum set) has a slice
// contained in S. Members with unknown quorum sets are treated as not
// satisfied, which is the conservative reading for safety analysis.
func IsQuorum(s NodeSet, qsets QuorumSets) bool {
	if len(s) == 0 {
		return false
	}
	for id := range s {
		q, ok := qsets[id]
		if !ok || !q.SatisfiedBy(s) {
			return false
		}
	}
	return true
}

// MaxQuorumWithin returns the largest quorum contained in candidate, or an
// empty set if none exists. It computes the greatest fixpoint: repeatedly
// remove nodes whose quorum set is not satisfied by the remaining set.
func MaxQuorumWithin(candidate NodeSet, qsets QuorumSets) NodeSet {
	s := candidate.Copy()
	for {
		removed := false
		for id := range s {
			q, ok := qsets[id]
			if !ok || !q.SatisfiedBy(s) {
				s.Remove(id)
				removed = true
			}
		}
		if !removed {
			return s
		}
	}
}

// TransitiveClosure returns every node reachable from start by following
// quorum-set membership edges (u depends on v if v appears in u's quorum
// set). This is the node's view of "the network" and the input to the
// quorum-intersection checker (paper §6.2).
func TransitiveClosure(start NodeID, qsets QuorumSets) NodeSet {
	seen := NewNodeSet(start)
	frontier := []NodeID{start}
	for len(frontier) > 0 {
		id := frontier[len(frontier)-1]
		frontier = frontier[:len(frontier)-1]
		q, ok := qsets[id]
		if !ok {
			continue
		}
		for member := range q.Members() {
			if !seen.Has(member) {
				seen.Add(member)
				frontier = append(frontier, member)
			}
		}
	}
	return seen
}

// Intertwined reports whether nodes a and b are intertwined given the faulty
// set: every quorum of a intersects every quorum of b in at least one
// non-faulty node (paper §3.1). Exponential in network size — analysis and
// test use only.
func Intertwined(a, b NodeID, qsets QuorumSets, faulty NodeSet) bool {
	qa := quorumsContaining(a, qsets)
	qb := quorumsContaining(b, qsets)
	for _, q1 := range qa {
		for _, q2 := range qb {
			if !q1.Intersect(q2).Minus(faulty).nonEmpty() {
				return false
			}
		}
	}
	return true
}

func (s NodeSet) nonEmpty() bool { return len(s) > 0 }

// quorumsContaining enumerates all quorums containing the given node by
// subset enumeration over the node's transitive closure. Exponential; small
// networks only.
func quorumsContaining(id NodeID, qsets QuorumSets) []NodeSet {
	closure := TransitiveClosure(id, qsets).Sorted()
	// Move id to position 0 and force its inclusion.
	for i, n := range closure {
		if n == id {
			closure[0], closure[i] = closure[i], closure[0]
			break
		}
	}
	rest := closure[1:]
	var out []NodeSet
	for mask := 0; mask < 1<<len(rest); mask++ {
		s := NewNodeSet(id)
		for i, n := range rest {
			if mask&(1<<i) != 0 {
				s.Add(n)
			}
		}
		if IsQuorum(s, qsets) {
			out = append(out, s)
		}
	}
	return out
}

// IsIntact reports whether the candidate set I is intact given the system's
// quorum sets: I is a quorum, every member's quorum set is satisfiable
// within I alone (uniform non-faulty quorum), and every two members remain
// intertwined even if every node outside I is faulty (paper §3.1).
// Exponential; small networks only.
func IsIntact(i NodeSet, qsets QuorumSets, all NodeSet) bool {
	if !IsQuorum(i, qsets) {
		return false
	}
	outside := all.Minus(i)
	members := i.Sorted()
	for x := 0; x < len(members); x++ {
		for y := x; y < len(members); y++ {
			if !Intertwined(members[x], members[y], qsets, outside) {
				return false
			}
		}
	}
	return true
}

// MaximalIntactSets enumerates the maximal intact sets of a small network
// given a concretely faulty set of nodes: subsets of well-behaved nodes that
// are intact when all other nodes (including the faulty ones) may be
// Byzantine. The paper notes intact sets partition the well-behaved nodes
// (§3.1); tests verify this property on generated topologies.
func MaximalIntactSets(qsets QuorumSets, faulty NodeSet) []NodeSet {
	all := make(NodeSet)
	for id := range qsets {
		all.Add(id)
	}
	wellBehaved := all.Minus(faulty).Sorted()
	var intact []NodeSet
	for mask := 1; mask < 1<<len(wellBehaved); mask++ {
		s := make(NodeSet)
		for i, n := range wellBehaved {
			if mask&(1<<i) != 0 {
				s.Add(n)
			}
		}
		if IsIntact(s, qsets, all) {
			intact = append(intact, s)
		}
	}
	// Keep only maximal sets.
	var out []NodeSet
	for i, s := range intact {
		maximal := true
		for j, t := range intact {
			if i != j && s.Subset(t) && !s.Equal(t) {
				maximal = false
				break
			}
		}
		if maximal {
			out = append(out, s)
		}
	}
	return dedupeSets(out)
}

// BlockedCascade computes the set of nodes that would eventually accept a
// statement starting from the given accepting set, by repeatedly adding any
// node for which the current set is v-blocking. This is the cascade of the
// cascade theorem (paper §3.1.2, Fig 2) and is used by ballot
// synchronization tests.
func BlockedCascade(accepted NodeSet, qsets QuorumSets) NodeSet {
	s := accepted.Copy()
	for {
		grew := false
		for id, q := range qsets {
			if !s.Has(id) && q.BlockedBy(s) {
				s.Add(id)
				grew = true
			}
		}
		if !grew {
			return s
		}
	}
}
