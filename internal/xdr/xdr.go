// Package xdr implements a small, deterministic binary encoding used
// throughout the reproduction wherever stellar-core would use XDR: hashing
// transaction sets, signing transactions, and identifying SCP values.
//
// The encoding is canonical — a given value has exactly one byte encoding —
// which is what makes content hashes (paper Fig 3) well defined. Like real
// XDR it is big-endian with 4-byte alignment for opaque data.
package xdr

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
)

// ErrTruncated is returned when decoding runs out of input.
var ErrTruncated = errors.New("xdr: truncated input")

// ErrOversize is returned when a declared length exceeds sane bounds.
var ErrOversize = errors.New("xdr: declared length too large")

// maxDecodeLen bounds variable-length fields to defend against corrupt or
// hostile inputs allocating unbounded memory.
const maxDecodeLen = 64 << 20

// Encoder writes canonical big-endian values to an underlying buffer.
// The zero value is ready to use.
type Encoder struct {
	buf []byte
}

// NewEncoder returns an Encoder with capacity preallocated.
func NewEncoder(capacity int) *Encoder {
	return &Encoder{buf: make([]byte, 0, capacity)}
}

// Bytes returns the encoded bytes. The slice aliases the encoder's buffer.
func (e *Encoder) Bytes() []byte { return e.buf }

// Len returns the number of bytes encoded so far.
func (e *Encoder) Len() int { return len(e.buf) }

// Reset discards the encoded contents, retaining the buffer.
func (e *Encoder) Reset() { e.buf = e.buf[:0] }

// PutUint32 appends a big-endian uint32.
func (e *Encoder) PutUint32(v uint32) {
	e.buf = binary.BigEndian.AppendUint32(e.buf, v)
}

// PutUint64 appends a big-endian uint64.
func (e *Encoder) PutUint64(v uint64) {
	e.buf = binary.BigEndian.AppendUint64(e.buf, v)
}

// PutInt32 appends a big-endian int32.
func (e *Encoder) PutInt32(v int32) { e.PutUint32(uint32(v)) }

// PutInt64 appends a big-endian int64.
func (e *Encoder) PutInt64(v int64) { e.PutUint64(uint64(v)) }

// PutBool appends a boolean as a uint32 0/1, as XDR does.
func (e *Encoder) PutBool(v bool) {
	if v {
		e.PutUint32(1)
	} else {
		e.PutUint32(0)
	}
}

// PutBytes appends a length-prefixed opaque with XDR 4-byte padding.
func (e *Encoder) PutBytes(b []byte) {
	e.PutUint32(uint32(len(b)))
	e.buf = append(e.buf, b...)
	for pad := (4 - len(b)%4) % 4; pad > 0; pad-- {
		e.buf = append(e.buf, 0)
	}
}

// PutFixed appends fixed-length opaque data with no length prefix.
func (e *Encoder) PutFixed(b []byte) {
	e.buf = append(e.buf, b...)
}

// PutString appends a length-prefixed UTF-8 string.
func (e *Encoder) PutString(s string) { e.PutBytes([]byte(s)) }

// Decoder reads values written by Encoder.
type Decoder struct {
	buf []byte
	off int
}

// NewDecoder returns a Decoder over buf.
func NewDecoder(buf []byte) *Decoder { return &Decoder{buf: buf} }

// Remaining returns the number of unread bytes.
func (d *Decoder) Remaining() int { return len(d.buf) - d.off }

// Done reports whether all input has been consumed.
func (d *Decoder) Done() bool { return d.Remaining() == 0 }

func (d *Decoder) take(n int) ([]byte, error) {
	if n < 0 || d.Remaining() < n {
		return nil, ErrTruncated
	}
	b := d.buf[d.off : d.off+n]
	d.off += n
	return b, nil
}

// Uint32 reads a big-endian uint32.
func (d *Decoder) Uint32() (uint32, error) {
	b, err := d.take(4)
	if err != nil {
		return 0, err
	}
	return binary.BigEndian.Uint32(b), nil
}

// Uint64 reads a big-endian uint64.
func (d *Decoder) Uint64() (uint64, error) {
	b, err := d.take(8)
	if err != nil {
		return 0, err
	}
	return binary.BigEndian.Uint64(b), nil
}

// Int32 reads a big-endian int32.
func (d *Decoder) Int32() (int32, error) {
	v, err := d.Uint32()
	return int32(v), err
}

// Int64 reads a big-endian int64.
func (d *Decoder) Int64() (int64, error) {
	v, err := d.Uint64()
	return int64(v), err
}

// Bool reads a uint32-encoded boolean, rejecting values other than 0 and 1
// so that encodings stay canonical.
func (d *Decoder) Bool() (bool, error) {
	v, err := d.Uint32()
	if err != nil {
		return false, err
	}
	switch v {
	case 0:
		return false, nil
	case 1:
		return true, nil
	default:
		return false, fmt.Errorf("xdr: bool encoding %d", v)
	}
}

// Bytes reads a length-prefixed opaque, consuming padding.
func (d *Decoder) Bytes() ([]byte, error) {
	n, err := d.Uint32()
	if err != nil {
		return nil, err
	}
	if n > maxDecodeLen {
		return nil, ErrOversize
	}
	b, err := d.take(int(n))
	if err != nil {
		return nil, err
	}
	pad := (4 - int(n)%4) % 4
	padding, err := d.take(pad)
	if err != nil {
		return nil, err
	}
	for _, p := range padding {
		if p != 0 {
			return nil, fmt.Errorf("xdr: nonzero padding")
		}
	}
	out := make([]byte, n)
	copy(out, b)
	return out, nil
}

// Fixed reads n bytes of fixed-length opaque data.
func (d *Decoder) Fixed(n int) ([]byte, error) {
	b, err := d.take(n)
	if err != nil {
		return nil, err
	}
	out := make([]byte, n)
	copy(out, b)
	return out, nil
}

// String reads a length-prefixed string.
func (d *Decoder) String() (string, error) {
	b, err := d.Bytes()
	return string(b), err
}

// Marshaler is implemented by types that can append their canonical
// encoding to an Encoder.
type Marshaler interface {
	EncodeXDR(e *Encoder)
}

// Marshal encodes m into a fresh byte slice.
func Marshal(m Marshaler) []byte {
	e := NewEncoder(128)
	m.EncodeXDR(e)
	out := make([]byte, e.Len())
	copy(out, e.Bytes())
	return out
}

// WriteTo writes the encoder's contents to w.
func (e *Encoder) WriteTo(w io.Writer) (int64, error) {
	n, err := w.Write(e.buf)
	return int64(n), err
}

// PutFloat64 appends a float64 as its IEEE-754 bits. Used only by metrics
// serialization, never by consensus-critical values.
func (e *Encoder) PutFloat64(v float64) { e.PutUint64(math.Float64bits(v)) }

// Float64 reads a float64 written by PutFloat64.
func (d *Decoder) Float64() (float64, error) {
	v, err := d.Uint64()
	return math.Float64frombits(v), err
}
