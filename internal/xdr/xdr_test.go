package xdr

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestScalarRoundTrip(t *testing.T) {
	e := NewEncoder(0)
	e.PutUint32(0xdeadbeef)
	e.PutUint64(1 << 60)
	e.PutInt32(-7)
	e.PutInt64(-1 << 40)
	e.PutBool(true)
	e.PutBool(false)

	d := NewDecoder(e.Bytes())
	if v, _ := d.Uint32(); v != 0xdeadbeef {
		t.Fatalf("uint32 = %#x", v)
	}
	if v, _ := d.Uint64(); v != 1<<60 {
		t.Fatalf("uint64 = %#x", v)
	}
	if v, _ := d.Int32(); v != -7 {
		t.Fatalf("int32 = %d", v)
	}
	if v, _ := d.Int64(); v != -1<<40 {
		t.Fatalf("int64 = %d", v)
	}
	if v, _ := d.Bool(); !v {
		t.Fatal("bool true lost")
	}
	if v, _ := d.Bool(); v {
		t.Fatal("bool false lost")
	}
	if !d.Done() {
		t.Fatalf("%d trailing bytes", d.Remaining())
	}
}

func TestBytesPadding(t *testing.T) {
	for n := 0; n <= 9; n++ {
		e := NewEncoder(0)
		payload := bytes.Repeat([]byte{0xAB}, n)
		e.PutBytes(payload)
		if e.Len()%4 != 0 {
			t.Fatalf("len %d not 4-aligned for payload %d", e.Len(), n)
		}
		d := NewDecoder(e.Bytes())
		got, err := d.Bytes()
		if err != nil {
			t.Fatalf("decode n=%d: %v", n, err)
		}
		if !bytes.Equal(got, payload) {
			t.Fatalf("payload n=%d mismatch", n)
		}
		if !d.Done() {
			t.Fatalf("n=%d: trailing bytes", n)
		}
	}
}

func TestStringRoundTrip(t *testing.T) {
	e := NewEncoder(0)
	e.PutString("hello, 世界")
	d := NewDecoder(e.Bytes())
	s, err := d.String()
	if err != nil || s != "hello, 世界" {
		t.Fatalf("string round trip: %q, %v", s, err)
	}
}

func TestTruncatedErrors(t *testing.T) {
	d := NewDecoder([]byte{0, 0})
	if _, err := d.Uint32(); err != ErrTruncated {
		t.Fatalf("want ErrTruncated, got %v", err)
	}
	// Declared length larger than remaining bytes.
	e := NewEncoder(0)
	e.PutUint32(100)
	d = NewDecoder(e.Bytes())
	if _, err := d.Bytes(); err == nil {
		t.Fatal("oversize declared length accepted")
	}
}

func TestOversizeRejected(t *testing.T) {
	e := NewEncoder(0)
	e.PutUint32(1 << 30)
	d := NewDecoder(e.Bytes())
	if _, err := d.Bytes(); err != ErrOversize {
		t.Fatalf("want ErrOversize, got %v", err)
	}
}

func TestBoolCanonical(t *testing.T) {
	e := NewEncoder(0)
	e.PutUint32(2)
	d := NewDecoder(e.Bytes())
	if _, err := d.Bool(); err == nil {
		t.Fatal("non-canonical bool accepted")
	}
}

func TestNonzeroPaddingRejected(t *testing.T) {
	// Hand-build a 1-byte opaque with nonzero padding.
	raw := []byte{0, 0, 0, 1, 0xFF, 1, 0, 0}
	d := NewDecoder(raw)
	if _, err := d.Bytes(); err == nil {
		t.Fatal("nonzero padding accepted")
	}
}

func TestFixed(t *testing.T) {
	e := NewEncoder(0)
	e.PutFixed([]byte{1, 2, 3})
	d := NewDecoder(e.Bytes())
	got, err := d.Fixed(3)
	if err != nil || !bytes.Equal(got, []byte{1, 2, 3}) {
		t.Fatalf("fixed round trip: %v %v", got, err)
	}
}

func TestFloat64RoundTrip(t *testing.T) {
	e := NewEncoder(0)
	e.PutFloat64(3.14159)
	d := NewDecoder(e.Bytes())
	if v, _ := d.Float64(); v != 3.14159 {
		t.Fatalf("float64 = %v", v)
	}
}

func TestReset(t *testing.T) {
	e := NewEncoder(0)
	e.PutUint64(1)
	e.Reset()
	if e.Len() != 0 {
		t.Fatal("Reset did not clear")
	}
}

func TestPropertyBytesRoundTrip(t *testing.T) {
	f := func(payloads [][]byte) bool {
		e := NewEncoder(0)
		for _, p := range payloads {
			e.PutBytes(p)
		}
		d := NewDecoder(e.Bytes())
		for _, p := range payloads {
			got, err := d.Bytes()
			if err != nil || !bytes.Equal(got, p) {
				return false
			}
		}
		return d.Done()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyCanonicalEncoding(t *testing.T) {
	// Encoding the same values twice yields identical bytes.
	f := func(a uint64, b []byte, c bool) bool {
		enc := func() []byte {
			e := NewEncoder(0)
			e.PutUint64(a)
			e.PutBytes(b)
			e.PutBool(c)
			out := make([]byte, e.Len())
			copy(out, e.Bytes())
			return out
		}
		return bytes.Equal(enc(), enc())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

type pair struct{ A, B uint32 }

func (p pair) EncodeXDR(e *Encoder) {
	e.PutUint32(p.A)
	e.PutUint32(p.B)
}

func TestMarshal(t *testing.T) {
	out := Marshal(pair{1, 2})
	if len(out) != 8 {
		t.Fatalf("marshal len %d", len(out))
	}
	d := NewDecoder(out)
	a, _ := d.Uint32()
	b, _ := d.Uint32()
	if a != 1 || b != 2 {
		t.Fatalf("marshal contents %d %d", a, b)
	}
}

func TestWriteTo(t *testing.T) {
	e := NewEncoder(0)
	e.PutUint32(42)
	var buf bytes.Buffer
	n, err := e.WriteTo(&buf)
	if err != nil || n != 4 {
		t.Fatalf("WriteTo: n=%d err=%v", n, err)
	}
}
