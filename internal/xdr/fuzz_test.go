package xdr_test

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"testing"

	"stellar/internal/fba"
	"stellar/internal/ledger"
	"stellar/internal/stellarcrypto"
	"stellar/internal/xdr"
)

// Fuzz targets for the two decoders that consume network-supplied bytes:
// transaction envelopes (flooded by peers) and quorum sets (carried in
// SCP envelopes). The property is decode→encode→decode stability: any
// input the decoder accepts must re-encode to a fixpoint, and decoding
// must never panic or allocate unboundedly on arbitrary bytes.

// seedSignedTx builds a representative signed envelope for the corpus:
// two signatures, time bounds, and a multi-op body.
func seedSignedTx() *ledger.Transaction {
	kp := stellarcrypto.KeyPairFromString("fuzz-seed-key")
	kp2 := stellarcrypto.KeyPairFromString("fuzz-seed-key-2")
	src := ledger.AccountIDFromPublicKey(kp.Public)
	dest := ledger.AccountIDFromPublicKey(kp2.Public)
	usd := ledger.Asset{Code: "USD", Issuer: src}
	tx := &ledger.Transaction{
		Source:     src,
		Fee:        200,
		SeqNum:     42,
		TimeBounds: &ledger.TimeBounds{MinTime: 1, MaxTime: 1 << 40},
		Memo:       "fuzz seed",
		Operations: []ledger.Operation{
			{Body: &ledger.Payment{Destination: dest, Asset: usd, Amount: 5}},
			{Body: &ledger.ManageOffer{Selling: usd, Buying: ledger.NativeAsset(),
				Amount: 7, Price: ledger.Price{N: 2, D: 3}}},
			{Source: dest, Body: &ledger.BumpSequence{BumpTo: 99}},
		},
	}
	nid := stellarcrypto.HashBytes([]byte("fuzz-seed-network"))
	tx.Sign(nid, kp)
	tx.Sign(nid, kp2)
	return tx
}

func txSeeds() [][]byte {
	short := &ledger.Transaction{
		Source: "G",
		Fee:    100,
		SeqNum: 1,
		Operations: []ledger.Operation{
			{Body: &ledger.CreateAccount{Destination: "H", StartingBalance: 1}},
		},
	}
	return [][]byte{
		seedSignedTx().MarshalSignedXDR(),
		short.MarshalSignedXDR(),
		{},
		{0, 0, 0, 4, 'j', 'u', 'n', 'k'},
	}
}

func qsetSeeds() [][]byte {
	nested := fba.QuorumSet{
		Threshold:  2,
		Validators: []fba.NodeID{"NB", "NA"},
		InnerSets: []fba.QuorumSet{
			{Threshold: 1, Validators: []fba.NodeID{"NC", "ND"}},
		},
	}
	flat := fba.QuorumSet{Threshold: 1, Validators: []fba.NodeID{"NE"}}
	return [][]byte{
		xdr.Marshal(&nested),
		xdr.Marshal(&flat),
		{},
		{0, 0, 0, 1},
	}
}

func FuzzTxDecodeRoundTrip(f *testing.F) {
	for _, s := range txSeeds() {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		tx, err := ledger.DecodeSignedTransactionXDR(data)
		if err != nil {
			return
		}
		// The envelope encoding has no normalization step, so anything
		// the strict decoder accepts is already in canonical form.
		b1 := tx.MarshalSignedXDR()
		if !bytes.Equal(b1, data) {
			t.Fatalf("accepted non-canonical encoding:\n in:  %x\n out: %x", data, b1)
		}
		tx2, err := ledger.DecodeSignedTransactionXDR(b1)
		if err != nil {
			t.Fatalf("re-decode of own encoding failed: %v", err)
		}
		if b2 := tx2.MarshalSignedXDR(); !bytes.Equal(b1, b2) {
			t.Fatalf("encode/decode not a fixpoint:\n b1: %x\n b2: %x", b1, b2)
		}
	})
}

func FuzzQuorumSetDecodeRoundTrip(f *testing.F) {
	for _, s := range qsetSeeds() {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		q, err := fba.DecodeQuorumSetXDR(xdr.NewDecoder(data))
		if err != nil {
			return
		}
		// Encoding sorts validators, so the input need not be canonical —
		// but one encode pass must reach the fixpoint.
		b1 := xdr.Marshal(&q)
		d2 := xdr.NewDecoder(b1)
		q2, err := fba.DecodeQuorumSetXDR(d2)
		if err != nil {
			t.Fatalf("re-decode of own encoding failed: %v", err)
		}
		if !d2.Done() {
			t.Fatalf("re-decode left %d trailing bytes", d2.Remaining())
		}
		if b2 := xdr.Marshal(&q2); !bytes.Equal(b1, b2) {
			t.Fatalf("encode/decode not a fixpoint:\n b1: %x\n b2: %x", b1, b2)
		}
	})
}

// TestSeedCorpusCheckedIn pins the checked-in seed corpora under
// testdata/fuzz to the generators above, so `go test -fuzz` always
// starts from valid envelopes even before f.Add runs. Regenerate with
// UPDATE_FUZZ_CORPUS=1 go test ./internal/xdr/ -run TestSeedCorpusCheckedIn
func TestSeedCorpusCheckedIn(t *testing.T) {
	for name, seeds := range map[string][][]byte{
		"FuzzTxDecodeRoundTrip":        txSeeds(),
		"FuzzQuorumSetDecodeRoundTrip": qsetSeeds(),
	} {
		dir := filepath.Join("testdata", "fuzz", name)
		for i, seed := range seeds {
			want := fmt.Sprintf("go test fuzz v1\n[]byte(%s)\n", strconv.Quote(string(seed)))
			path := filepath.Join(dir, fmt.Sprintf("seed-%d", i))
			if os.Getenv("UPDATE_FUZZ_CORPUS") != "" {
				if err := os.MkdirAll(dir, 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, []byte(want), 0o644); err != nil {
					t.Fatal(err)
				}
				continue
			}
			got, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("%s: %v (regenerate with UPDATE_FUZZ_CORPUS=1)", path, err)
			}
			if string(got) != want {
				t.Fatalf("%s is stale (regenerate with UPDATE_FUZZ_CORPUS=1)", path)
			}
		}
	}
}
