// Package stellarcrypto provides the cryptographic primitives used across
// the Stellar reproduction: ed25519 account keys, SHA-256 hashing helpers,
// and the strkey-style human-readable encoding of public keys and seeds.
//
// Accounts on the ledger are named by ed25519 public keys (paper §5.1); the
// corresponding private key signs transactions for the account unless the
// account has been reconfigured with other signers.
package stellarcrypto

import (
	"crypto/ed25519"
	"crypto/rand"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"errors"
	"fmt"
	"io"
)

// Hash is a SHA-256 digest. Ledger headers, transaction sets, buckets, and
// SCP values are all identified by Hash (paper Fig 3).
type Hash [32]byte

// HashBytes returns the SHA-256 digest of data.
func HashBytes(data []byte) Hash {
	return sha256.Sum256(data)
}

// HashConcat hashes the concatenation of the given byte slices. Each slice is
// length-prefixed so that the encoding is injective: HashConcat("ab","c") is
// distinct from HashConcat("a","bc").
func HashConcat(parts ...[]byte) Hash {
	h := sha256.New()
	var lenbuf [8]byte
	for _, p := range parts {
		binary.BigEndian.PutUint64(lenbuf[:], uint64(len(p)))
		h.Write(lenbuf[:])
		h.Write(p)
	}
	var out Hash
	h.Sum(out[:0])
	return out
}

// Zero reports whether h is the all-zero hash.
func (h Hash) Zero() bool { return h == Hash{} }

// String returns a short hex prefix for logging.
func (h Hash) String() string { return hex.EncodeToString(h[:4]) }

// Hex returns the full lowercase hex encoding.
func (h Hash) Hex() string { return hex.EncodeToString(h[:]) }

// Less provides a total order over hashes (used for deterministic
// tie-breaking, e.g. choosing among nominated transaction sets, §5.3).
func (h Hash) Less(other Hash) bool {
	for i := range h {
		if h[i] != other[i] {
			return h[i] < other[i]
		}
	}
	return false
}

// PublicKey is an ed25519 public key naming an account or validator node.
type PublicKey struct {
	ed ed25519.PublicKey
}

// SecretKey holds an ed25519 private key.
type SecretKey struct {
	ed ed25519.PrivateKey
}

// KeyPair bundles a public key with its secret key.
type KeyPair struct {
	Public PublicKey
	Secret SecretKey
}

// GenerateKeyPair creates a new random ed25519 key pair.
func GenerateKeyPair() (KeyPair, error) {
	pub, priv, err := ed25519.GenerateKey(rand.Reader)
	if err != nil {
		return KeyPair{}, fmt.Errorf("stellarcrypto: generate key: %w", err)
	}
	return KeyPair{Public: PublicKey{ed: pub}, Secret: SecretKey{ed: priv}}, nil
}

// KeyPairFromSeed derives a deterministic key pair from a 32-byte seed.
// Simulations and tests use this so that runs are reproducible.
func KeyPairFromSeed(seed [32]byte) KeyPair {
	priv := ed25519.NewKeyFromSeed(seed[:])
	return KeyPair{
		Public: PublicKey{ed: priv.Public().(ed25519.PublicKey)},
		Secret: SecretKey{ed: priv},
	}
}

// KeyPairFromString derives a key pair by hashing an arbitrary label. It is a
// convenience for tests and examples ("alice", "node-3", ...).
func KeyPairFromString(label string) KeyPair {
	return KeyPairFromSeed(HashBytes([]byte(label)))
}

// DeterministicKeyPairs returns n key pairs derived from a shared seed label,
// suitable for simulated validator fleets.
func DeterministicKeyPairs(label string, n int) []KeyPair {
	kps := make([]KeyPair, n)
	for i := range kps {
		kps[i] = KeyPairFromString(fmt.Sprintf("%s-%d", label, i))
	}
	return kps
}

// ReadKeyPair reads 32 bytes of seed from r and derives a key pair.
func ReadKeyPair(r io.Reader) (KeyPair, error) {
	var seed [32]byte
	if _, err := io.ReadFull(r, seed[:]); err != nil {
		return KeyPair{}, fmt.Errorf("stellarcrypto: read seed: %w", err)
	}
	return KeyPairFromSeed(seed), nil
}

// Bytes returns the raw 32-byte public key.
func (p PublicKey) Bytes() []byte {
	out := make([]byte, len(p.ed))
	copy(out, p.ed)
	return out
}

// IsZero reports whether the key is unset.
func (p PublicKey) IsZero() bool { return len(p.ed) == 0 }

// Equal reports whether two public keys are the same key.
func (p PublicKey) Equal(q PublicKey) bool { return string(p.ed) == string(q.ed) }

// Verify reports whether sig is a valid signature of msg under p.
func (p PublicKey) Verify(msg, sig []byte) bool {
	if len(p.ed) != ed25519.PublicKeySize || len(sig) != ed25519.SignatureSize {
		return false
	}
	return ed25519.Verify(p.ed, msg, sig)
}

// Hint returns the signature hint for the key: its last four bytes, as
// in stellar-core's DecoratedSignature. Verifiers use the hint to try
// likely keys first instead of brute-forcing every candidate.
func (p PublicKey) Hint() [4]byte {
	var h [4]byte
	if len(p.ed) >= 4 {
		copy(h[:], p.ed[len(p.ed)-4:])
	}
	return h
}

// Address returns the strkey-style "G..." encoding of the public key.
func (p PublicKey) Address() string { return encodeStrkey(versionAccountID, p.ed) }

// String implements fmt.Stringer with a short address prefix for logs.
func (p PublicKey) String() string {
	if p.IsZero() {
		return "G(unset)"
	}
	addr := p.Address()
	return addr[:8]
}

// PublicKeyFromBytes builds a PublicKey from raw bytes.
func PublicKeyFromBytes(b []byte) (PublicKey, error) {
	if len(b) != ed25519.PublicKeySize {
		return PublicKey{}, fmt.Errorf("stellarcrypto: bad public key length %d", len(b))
	}
	k := make(ed25519.PublicKey, ed25519.PublicKeySize)
	copy(k, b)
	return PublicKey{ed: k}, nil
}

// PublicKeyFromAddress decodes a "G..." strkey address.
func PublicKeyFromAddress(addr string) (PublicKey, error) {
	payload, err := decodeStrkey(versionAccountID, addr)
	if err != nil {
		return PublicKey{}, err
	}
	return PublicKeyFromBytes(payload)
}

// Sign signs msg with the secret key.
func (s SecretKey) Sign(msg []byte) []byte {
	return ed25519.Sign(s.ed, msg)
}

// Seed returns the strkey-style "S..." encoding of the private seed.
func (s SecretKey) Seed() string { return encodeStrkey(versionSeed, s.ed.Seed()) }

// IsZero reports whether the key is unset.
func (s SecretKey) IsZero() bool { return len(s.ed) == 0 }

// ErrBadSignature is returned when signature verification fails.
var ErrBadSignature = errors.New("stellarcrypto: bad signature")
