package stellarcrypto

import (
	"encoding/base32"
	"fmt"
)

// Strkey is Stellar's human-readable key encoding: a version byte, the
// payload, and a CRC16-XModem checksum, all base32-encoded. Account IDs
// start with "G", seeds with "S".

type strkeyVersion byte

const (
	versionAccountID strkeyVersion = 6 << 3  // 'G'
	versionSeed      strkeyVersion = 18 << 3 // 'S'
)

var b32 = base32.StdEncoding.WithPadding(base32.NoPadding)

// crc16 computes the CRC16-XModem checksum used by strkey.
func crc16(data []byte) uint16 {
	var crc uint16
	for _, b := range data {
		crc ^= uint16(b) << 8
		for i := 0; i < 8; i++ {
			if crc&0x8000 != 0 {
				crc = crc<<1 ^ 0x1021
			} else {
				crc <<= 1
			}
		}
	}
	return crc
}

func encodeStrkey(version strkeyVersion, payload []byte) string {
	raw := make([]byte, 0, 1+len(payload)+2)
	raw = append(raw, byte(version))
	raw = append(raw, payload...)
	crc := crc16(raw)
	raw = append(raw, byte(crc&0xff), byte(crc>>8))
	return b32.EncodeToString(raw)
}

func decodeStrkey(version strkeyVersion, s string) ([]byte, error) {
	raw, err := b32.DecodeString(s)
	if err != nil {
		return nil, fmt.Errorf("stellarcrypto: strkey base32: %w", err)
	}
	if len(raw) < 3 {
		return nil, fmt.Errorf("stellarcrypto: strkey too short")
	}
	body, cksum := raw[:len(raw)-2], raw[len(raw)-2:]
	want := crc16(body)
	got := uint16(cksum[0]) | uint16(cksum[1])<<8
	if want != got {
		return nil, fmt.Errorf("stellarcrypto: strkey checksum mismatch")
	}
	if strkeyVersion(body[0]) != version {
		return nil, fmt.Errorf("stellarcrypto: strkey version byte %#x, want %#x", body[0], byte(version))
	}
	return body[1:], nil
}
