package stellarcrypto

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"
)

func TestGenerateKeyPairSignVerify(t *testing.T) {
	kp, err := GenerateKeyPair()
	if err != nil {
		t.Fatalf("GenerateKeyPair: %v", err)
	}
	msg := []byte("hello stellar")
	sig := kp.Secret.Sign(msg)
	if !kp.Public.Verify(msg, sig) {
		t.Fatal("signature did not verify")
	}
	if kp.Public.Verify([]byte("tampered"), sig) {
		t.Fatal("signature verified for wrong message")
	}
}

func TestKeyPairFromSeedDeterministic(t *testing.T) {
	var seed [32]byte
	copy(seed[:], "some deterministic seed material")
	a := KeyPairFromSeed(seed)
	b := KeyPairFromSeed(seed)
	if !a.Public.Equal(b.Public) {
		t.Fatal("same seed produced different public keys")
	}
}

func TestKeyPairFromStringDistinct(t *testing.T) {
	a := KeyPairFromString("alice")
	b := KeyPairFromString("bob")
	if a.Public.Equal(b.Public) {
		t.Fatal("different labels produced equal keys")
	}
}

func TestDeterministicKeyPairs(t *testing.T) {
	kps := DeterministicKeyPairs("validator", 5)
	if len(kps) != 5 {
		t.Fatalf("got %d pairs, want 5", len(kps))
	}
	seen := map[string]bool{}
	for _, kp := range kps {
		addr := kp.Public.Address()
		if seen[addr] {
			t.Fatalf("duplicate key %s", addr)
		}
		seen[addr] = true
	}
	again := DeterministicKeyPairs("validator", 5)
	for i := range kps {
		if !kps[i].Public.Equal(again[i].Public) {
			t.Fatalf("pair %d not deterministic", i)
		}
	}
}

func TestAddressRoundTrip(t *testing.T) {
	kp := KeyPairFromString("roundtrip")
	addr := kp.Public.Address()
	if !strings.HasPrefix(addr, "G") {
		t.Fatalf("address %q does not start with G", addr)
	}
	back, err := PublicKeyFromAddress(addr)
	if err != nil {
		t.Fatalf("PublicKeyFromAddress: %v", err)
	}
	if !back.Equal(kp.Public) {
		t.Fatal("address round trip changed key")
	}
}

func TestSeedEncoding(t *testing.T) {
	kp := KeyPairFromString("seed-test")
	seed := kp.Secret.Seed()
	if !strings.HasPrefix(seed, "S") {
		t.Fatalf("seed %q does not start with S", seed)
	}
}

func TestAddressRejectsCorruption(t *testing.T) {
	kp := KeyPairFromString("corrupt")
	addr := kp.Public.Address()
	// Flip one character.
	c := addr[10]
	var repl byte = 'A'
	if c == 'A' {
		repl = 'B'
	}
	bad := addr[:10] + string(repl) + addr[11:]
	if _, err := PublicKeyFromAddress(bad); err == nil {
		t.Fatal("corrupted address decoded without error")
	}
}

func TestAddressRejectsWrongVersion(t *testing.T) {
	kp := KeyPairFromString("version")
	seed := kp.Secret.Seed() // starts with S
	if _, err := PublicKeyFromAddress(seed); err == nil {
		t.Fatal("seed strkey accepted as account address")
	}
}

func TestPublicKeyFromBytesLength(t *testing.T) {
	if _, err := PublicKeyFromBytes(make([]byte, 31)); err == nil {
		t.Fatal("31-byte key accepted")
	}
	if _, err := PublicKeyFromBytes(make([]byte, 32)); err != nil {
		t.Fatalf("32-byte key rejected: %v", err)
	}
}

func TestHashBytes(t *testing.T) {
	a := HashBytes([]byte("x"))
	b := HashBytes([]byte("x"))
	c := HashBytes([]byte("y"))
	if a != b {
		t.Fatal("hash not deterministic")
	}
	if a == c {
		t.Fatal("distinct inputs hashed equal")
	}
}

func TestHashConcatInjective(t *testing.T) {
	a := HashConcat([]byte("ab"), []byte("c"))
	b := HashConcat([]byte("a"), []byte("bc"))
	if a == b {
		t.Fatal("HashConcat not injective across boundaries")
	}
}

func TestHashLessTotalOrder(t *testing.T) {
	a := HashBytes([]byte("a"))
	b := HashBytes([]byte("b"))
	if a == b {
		t.Fatal("test setup: hashes equal")
	}
	if a.Less(b) == b.Less(a) {
		t.Fatal("Less not antisymmetric")
	}
	if a.Less(a) {
		t.Fatal("Less not irreflexive")
	}
}

func TestHashHexAndString(t *testing.T) {
	h := HashBytes([]byte("z"))
	if len(h.Hex()) != 64 {
		t.Fatalf("hex length %d, want 64", len(h.Hex()))
	}
	if len(h.String()) != 8 {
		t.Fatalf("short form length %d, want 8", len(h.String()))
	}
	var zero Hash
	if !zero.Zero() || h.Zero() {
		t.Fatal("Zero() misbehaves")
	}
}

func TestCRC16KnownVector(t *testing.T) {
	// CRC16-XModem of "123456789" is 0x31C3.
	if got := crc16([]byte("123456789")); got != 0x31c3 {
		t.Fatalf("crc16 = %#x, want 0x31c3", got)
	}
}

func TestStrkeyPropertyRoundTrip(t *testing.T) {
	f := func(seed [32]byte) bool {
		kp := KeyPairFromSeed(seed)
		back, err := PublicKeyFromAddress(kp.Public.Address())
		return err == nil && back.Equal(kp.Public)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestSignaturePropertyAnyMessage(t *testing.T) {
	kp := KeyPairFromString("prop")
	f := func(msg []byte) bool {
		sig := kp.Secret.Sign(msg)
		return kp.Public.Verify(msg, sig)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestReadKeyPair(t *testing.T) {
	seed := bytes.Repeat([]byte{7}, 32)
	kp, err := ReadKeyPair(bytes.NewReader(seed))
	if err != nil {
		t.Fatalf("ReadKeyPair: %v", err)
	}
	var arr [32]byte
	copy(arr[:], seed)
	if !kp.Public.Equal(KeyPairFromSeed(arr).Public) {
		t.Fatal("ReadKeyPair differs from KeyPairFromSeed")
	}
	if _, err := ReadKeyPair(bytes.NewReader(seed[:10])); err == nil {
		t.Fatal("short seed accepted")
	}
}
