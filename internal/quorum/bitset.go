package quorum

import (
	"math/bits"
	"sort"

	"stellar/internal/fba"
)

// The search core works on an indexed, bitset-based representation of the
// FBA system: node IDs become small integers and node sets become uint64
// words, making the greatest-fixpoint quorum computations that dominate the
// search orders of magnitude cheaper than map-based sets.

type bitset []uint64

func newBitset(n int) bitset { return make(bitset, (n+63)/64) }

func (b bitset) set(i int)      { b[i/64] |= 1 << (i % 64) }
func (b bitset) clear(i int)    { b[i/64] &^= 1 << (i % 64) }
func (b bitset) has(i int) bool { return b[i/64]&(1<<(i%64)) != 0 }

func (b bitset) copy() bitset {
	c := make(bitset, len(b))
	copy(c, b)
	return c
}

func (b bitset) count() int {
	n := 0
	for _, w := range b {
		n += bits.OnesCount64(w)
	}
	return n
}

func (b bitset) empty() bool {
	for _, w := range b {
		if w != 0 {
			return false
		}
	}
	return true
}

// or sets b = b | o.
func (b bitset) or(o bitset) {
	for i := range b {
		b[i] |= o[i]
	}
}

// andNot sets b = b &^ o.
func (b bitset) andNot(o bitset) {
	for i := range b {
		b[i] &^= o[i]
	}
}

func (b bitset) subset(o bitset) bool {
	for i := range b {
		if b[i]&^o[i] != 0 {
			return false
		}
	}
	return true
}

func (b bitset) intersects(o bitset) bool {
	for i := range b {
		if b[i]&o[i] != 0 {
			return true
		}
	}
	return false
}

// forEach calls fn for every set bit in ascending order.
func (b bitset) forEach(fn func(i int)) {
	for wi, w := range b {
		for w != 0 {
			i := wi*64 + bits.TrailingZeros64(w)
			fn(i)
			w &= w - 1
		}
	}
}

// iqset is a quorum set compiled to node indices. Validators referencing
// nodes without known quorum sets are compiled to index -1 entries, which
// can never be satisfied — the conservative reading for safety analysis.
type iqset struct {
	threshold int
	vals      []int
	inner     []*iqset
}

func (q *iqset) satisfiedBy(b bitset) bool {
	count := 0
	for _, v := range q.vals {
		if v >= 0 && b.has(v) {
			count++
			if count >= q.threshold {
				return true
			}
		}
	}
	for _, in := range q.inner {
		if in.satisfiedBy(b) {
			count++
			if count >= q.threshold {
				return true
			}
		}
	}
	return false
}

// isystem is the indexed FBA system.
type isystem struct {
	ids   []fba.NodeID
	index map[fba.NodeID]int
	qs    []*iqset
}

func buildSystem(qsets fba.QuorumSets) *isystem {
	ids := make([]fba.NodeID, 0, len(qsets))
	for id := range qsets {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	sys := &isystem{ids: ids, index: make(map[fba.NodeID]int, len(ids))}
	for i, id := range ids {
		sys.index[id] = i
	}
	sys.qs = make([]*iqset, len(ids))
	for i, id := range ids {
		sys.qs[i] = sys.compile(qsets[id])
	}
	return sys
}

func (sys *isystem) compile(q *fba.QuorumSet) *iqset {
	out := &iqset{threshold: q.Threshold}
	for _, v := range q.Validators {
		idx, ok := sys.index[v]
		if !ok {
			idx = -1
		}
		out.vals = append(out.vals, idx)
	}
	for i := range q.InnerSets {
		out.inner = append(out.inner, sys.compile(&q.InnerSets[i]))
	}
	return out
}

// toBitset converts a NodeSet (dropping unknown nodes).
func (sys *isystem) toBitset(s fba.NodeSet) bitset {
	b := newBitset(len(sys.ids))
	for id := range s {
		if i, ok := sys.index[id]; ok {
			b.set(i)
		}
	}
	return b
}

// toNodeSet converts back to a NodeSet.
func (sys *isystem) toNodeSet(b bitset) fba.NodeSet {
	out := make(fba.NodeSet)
	b.forEach(func(i int) { out.Add(sys.ids[i]) })
	return out
}

// maxQuorum computes the greatest fixpoint: the largest quorum contained in
// candidate (possibly empty). The result aliases fresh storage.
func (sys *isystem) maxQuorum(candidate bitset) bitset {
	cur := candidate.copy()
	for {
		removed := false
		cur.forEach(func(i int) {
			if !sys.qs[i].satisfiedBy(cur) {
				cur.clear(i)
				removed = true
			}
		})
		if !removed {
			return cur
		}
	}
}

// isQuorumBits reports whether b is a non-empty quorum.
func (sys *isystem) isQuorumBits(b bitset) bool {
	if b.empty() {
		return false
	}
	ok := true
	b.forEach(func(i int) {
		if !sys.qs[i].satisfiedBy(b) {
			ok = false
		}
	})
	return ok
}
