package quorum

import (
	"fmt"
	"testing"

	"stellar/internal/fba"
	"stellar/internal/qconfig"
)

func symmetric(n, threshold int) fba.QuorumSets {
	var ids []fba.NodeID
	for i := 0; i < n; i++ {
		ids = append(ids, fba.NodeID(fmt.Sprintf("n%02d", i)))
	}
	qs := make(fba.QuorumSets)
	for _, id := range ids {
		q := fba.QuorumSet{Threshold: threshold, Validators: ids}
		qs[id] = &q
	}
	return qs
}

func TestIntersectionSymmetricMajority(t *testing.T) {
	// 3-of-4: any two quorums overlap.
	res := CheckIntersection(symmetric(4, 3))
	if !res.HasQuorum || !res.Intersects {
		t.Fatalf("3-of-4 should intersect: %s", res)
	}
}

func TestIntersectionSymmetricHalf(t *testing.T) {
	// 2-of-4: two disjoint pairs form disjoint quorums.
	res := CheckIntersection(symmetric(4, 2))
	if res.Intersects {
		t.Fatalf("2-of-4 should admit disjoint quorums")
	}
	if len(res.Disjoint1) == 0 || len(res.Disjoint2) == 0 {
		t.Fatal("witnesses missing")
	}
	if res.Disjoint1.Intersects(res.Disjoint2) {
		t.Fatalf("witnesses intersect: %s vs %s", res.Disjoint1, res.Disjoint2)
	}
	if !fba.IsQuorum(res.Disjoint1, symmetric(4, 2)) || !fba.IsQuorum(res.Disjoint2, symmetric(4, 2)) {
		t.Fatal("witnesses are not quorums")
	}
}

func TestIntersectionTwoCliques(t *testing.T) {
	// Two disjoint cliques: detected via the SCC rule.
	qs := fba.QuorumSets{}
	a := fba.QuorumSet{Threshold: 2, Validators: []fba.NodeID{"a1", "a2"}}
	b := fba.QuorumSet{Threshold: 2, Validators: []fba.NodeID{"b1", "b2"}}
	qs["a1"], qs["a2"] = &a, &a
	qs["b1"], qs["b2"] = &b, &b
	res := CheckIntersection(qs)
	if res.Intersects {
		t.Fatal("disjoint cliques not detected")
	}
	if res.SCCs != 2 {
		t.Fatalf("SCCs with quorums = %d, want 2", res.SCCs)
	}
}

func TestIntersectionNoQuorums(t *testing.T) {
	// a requires b, b requires a... but thresholds unsatisfiable: each
	// needs the other plus a ghost node that has no quorum set.
	qs := fba.QuorumSets{}
	a := fba.QuorumSet{Threshold: 3, Validators: []fba.NodeID{"a", "b", "ghost"}}
	qs["a"] = &a
	qs["b"] = &a
	res := CheckIntersection(qs)
	if res.HasQuorum {
		t.Fatal("found quorum where none satisfiable")
	}
	if !res.Intersects {
		t.Fatal("vacuous intersection should hold")
	}
}

func TestIntersectionSingleton(t *testing.T) {
	qs := fba.QuorumSets{}
	self := fba.QuorumSet{Threshold: 1, Validators: []fba.NodeID{"solo"}}
	qs["solo"] = &self
	res := CheckIntersection(qs)
	if !res.HasQuorum || !res.Intersects {
		t.Fatalf("singleton: %s", res)
	}
}

func TestIntersectionTieredTopology(t *testing.T) {
	// The paper's healthy configuration: orgs with 51% inner sets and a
	// 67% outer threshold enjoy intersection.
	cfg := qconfig.SimulatedNetwork(5, 3, qconfig.High)
	qs, err := cfg.QuorumSets()
	if err != nil {
		t.Fatal(err)
	}
	res := CheckIntersection(qs)
	if !res.HasQuorum || !res.Intersects {
		t.Fatalf("tiered network should intersect: %s", res)
	}
}

func TestIntersectionTieredLowThresholdBreaks(t *testing.T) {
	// Hand-build an unsafe variant: orgs only require 51% of orgs (not
	// 67%), admitting two disjoint org-majorities when orgs=4... with 4
	// orgs at 51% → threshold 3 of 4, that still intersects; use a
	// threshold-2-of-4 direct construction instead.
	var orgs []fba.QuorumSet
	var allIDs []fba.NodeID
	for o := 0; o < 4; o++ {
		var ids []fba.NodeID
		for v := 0; v < 3; v++ {
			ids = append(ids, fba.NodeID(fmt.Sprintf("org%d-%d", o, v)))
		}
		allIDs = append(allIDs, ids...)
		orgs = append(orgs, fba.Majority(ids...))
	}
	unsafe := fba.QuorumSet{Threshold: 2, InnerSets: orgs}
	qs := make(fba.QuorumSets)
	for _, id := range allIDs {
		q := unsafe
		qs[id] = &q
	}
	res := CheckIntersection(qs)
	if res.Intersects {
		t.Fatal("2-of-4-orgs should admit disjoint quorums")
	}
}

func TestWitnessesAreValidQuorums(t *testing.T) {
	qs := symmetric(6, 3) // 3-of-6: plenty of disjoint pairs
	res := CheckIntersection(qs)
	if res.Intersects {
		if !fba.IsQuorum(fba.MaxQuorumWithin(fba.NewNodeSet("n00", "n01", "n02"), qs), qs) {
			t.Skip("unexpected topology")
		}
		t.Fatal("3-of-6 should not intersect")
	}
	if !fba.IsQuorum(res.Disjoint1, qs) || !fba.IsQuorum(res.Disjoint2, qs) {
		t.Fatal("witnesses are not quorums")
	}
}

func TestSCCComputation(t *testing.T) {
	// a→b→c→a is one SCC; d→a dangles.
	qs := fba.QuorumSets{
		"a": {Threshold: 1, Validators: []fba.NodeID{"b"}},
		"b": {Threshold: 1, Validators: []fba.NodeID{"c"}},
		"c": {Threshold: 1, Validators: []fba.NodeID{"a"}},
		"d": {Threshold: 1, Validators: []fba.NodeID{"a"}},
	}
	sccs := stronglyConnectedComponents(qs)
	sizes := map[int]int{}
	for _, s := range sccs {
		sizes[len(s)]++
	}
	if sizes[3] != 1 || sizes[1] != 1 {
		t.Fatalf("SCC sizes wrong: %v", sizes)
	}
}

func TestCriticalityHealthyTiered(t *testing.T) {
	// 5 high-quality orgs at 67%: knocking one org into worst-case
	// misconfiguration leaves 3-of-4 + the free agents; should stay safe.
	cfg := qconfig.SimulatedNetwork(5, 3, qconfig.High)
	qs, err := cfg.QuorumSets()
	if err != nil {
		t.Fatal(err)
	}
	rep := CheckCriticality(qs, GroupByPrefix(qs))
	if rep.AnyCritical() {
		t.Fatalf("healthy 5-org network reported critical orgs: %v", rep.Critical)
	}
	if rep.Checks != 5 {
		t.Fatalf("checks = %d, want 5", rep.Checks)
	}
}

func TestCriticalityBridgeOrg(t *testing.T) {
	// The §6 scenario in miniature: a systemically important bridge org
	// whose *honest* configuration is the only thing gluing two clusters
	// together. The left and right clusters each require just one bridge
	// node (a dangerous sub-majority entry of the kind the §6.1
	// quality-tier mechanism eliminates); the bridge's own quorum set
	// spans both clusters. Healthy, every quorum pulls in a bridge node
	// whose quorum set forces overlap. If the bridge org misconfigures
	// (worst case: its nodes agree with anyone), the left cluster plus
	// bridge-0 and the right cluster plus bridge-1 form disjoint quorums.
	qs := make(fba.QuorumSets)
	leftIDs := []fba.NodeID{"left-0", "left-1"}
	rightIDs := []fba.NodeID{"right-0", "right-1"}
	bridgeIDs := []fba.NodeID{"bridge-0", "bridge-1"}

	leftQ := fba.QuorumSet{Threshold: 3, InnerSets: []fba.QuorumSet{
		{Threshold: 2, Validators: leftIDs},
		{Threshold: 1, Validators: bridgeIDs}, // sub-majority bridge entry
	}}
	// Threshold 3 of [left-pair, bridge-entry] is impossible; use 2-of-2.
	leftQ.Threshold = 2
	rightQ := fba.QuorumSet{Threshold: 2, InnerSets: []fba.QuorumSet{
		{Threshold: 2, Validators: rightIDs},
		{Threshold: 1, Validators: bridgeIDs},
	}}
	bridgeQ := fba.QuorumSet{Threshold: 3, InnerSets: []fba.QuorumSet{
		{Threshold: 2, Validators: leftIDs},
		{Threshold: 2, Validators: rightIDs},
		{Threshold: 2, Validators: bridgeIDs},
	}}
	for _, id := range leftIDs {
		q := leftQ
		qs[id] = &q
	}
	for _, id := range rightIDs {
		q := rightQ
		qs[id] = &q
	}
	for _, id := range bridgeIDs {
		q := bridgeQ
		qs[id] = &q
	}

	// Healthy: every quorum contains a bridge node, whose quorum set
	// requires both clusters — so all quorums overlap.
	res := CheckIntersection(qs)
	if !res.Intersects {
		t.Fatalf("bridge topology should intersect while healthy: %s", res)
	}

	rep := CheckCriticality(qs, GroupByPrefix(qs))
	foundBridge := false
	for _, name := range rep.Critical {
		if name == "bridge" {
			foundBridge = true
		}
	}
	if !foundBridge {
		t.Fatalf("critical orgs %v do not include the bridge", rep.Critical)
	}
}

func TestCriticalityMajorityEntriesResist(t *testing.T) {
	// The flip side, and the point of the §6.1 design: when every org
	// appears in others' quorum sets as a 51% (majority) inner set, a
	// single org's worst-case misconfiguration cannot complete quorums
	// on both sides of a split — org majorities self-intersect. Even a
	// minimal 3-org network stays non-critical.
	cfg := qconfig.SimulatedNetwork(3, 3, qconfig.Medium)
	qs, err := cfg.QuorumSets()
	if err != nil {
		t.Fatal(err)
	}
	rep := CheckCriticality(qs, GroupByPrefix(qs))
	if rep.AnyCritical() {
		t.Fatalf("majority-entry network reported critical orgs: %v", rep.Critical)
	}
}

func TestGroupByPrefix(t *testing.T) {
	qs := fba.QuorumSets{
		"sdf-1":  {Threshold: 1, Validators: []fba.NodeID{"sdf-1"}},
		"sdf-2":  {Threshold: 1, Validators: []fba.NodeID{"sdf-2"}},
		"keyb-1": {Threshold: 1, Validators: []fba.NodeID{"keyb-1"}},
	}
	orgs := GroupByPrefix(qs)
	if len(orgs) != 2 {
		t.Fatalf("got %d orgs, want 2", len(orgs))
	}
	if orgs[0].Name != "keyb" || orgs[1].Name != "sdf" {
		t.Fatalf("org names: %v, %v", orgs[0].Name, orgs[1].Name)
	}
	if len(orgs[1].Validators) != 2 {
		t.Fatalf("sdf validators: %d", len(orgs[1].Validators))
	}
}

func TestWorstCaseMisconfig(t *testing.T) {
	qs := symmetric(4, 3)
	mis := worstCaseMisconfig(qs, []fba.NodeID{"n00"})
	// Malleable: threshold 1 over the three other nodes, self excluded.
	if mis["n00"].Threshold != 1 || len(mis["n00"].Validators) != 3 {
		t.Fatalf("misconfig not applied: %s", mis["n00"].String())
	}
	if mis["n00"].Members().Has("n00") {
		t.Fatal("malleable set includes the group's own node")
	}
	if mis["n01"].Threshold != 3 {
		t.Fatal("other nodes altered")
	}
	// Original untouched.
	if qs["n00"].Threshold != 3 {
		t.Fatal("original mutated")
	}
	// Whole-network group: nothing to model, unchanged copies.
	whole := worstCaseMisconfig(qs, []fba.NodeID{"n00", "n01", "n02", "n03"})
	if whole["n00"].Threshold != 3 {
		t.Fatal("whole-network group altered")
	}
}

func TestCheckerScalesToProductionSize(t *testing.T) {
	// §6.2.1: transitive closures of 20–30 nodes check "in a matter of
	// seconds"; ours should handle a 10-org (30-node) tier in well under
	// a second.
	cfg := qconfig.SimulatedNetwork(10, 3, qconfig.High)
	qs, err := cfg.QuorumSets()
	if err != nil {
		t.Fatal(err)
	}
	res := CheckIntersection(qs)
	if !res.Intersects {
		t.Fatalf("10-org tiered network should intersect: %s", res)
	}
}
