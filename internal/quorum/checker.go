// Package quorum implements the proactive misconfiguration detection of
// paper §6.2: a quorum-intersection checker (§6.2.1) in the style of
// Lachowski's algorithm, and the criticality analysis (§6.2.2) that warns
// when the network is one misconfiguration away from admitting disjoint
// quorums.
//
// Deciding quorum intersection is co-NP-hard in general; the checker relies
// on case-elimination rules that make typical (organizationally tiered)
// instances fast:
//
//  1. Every minimal quorum lies within a single strongly connected
//     component of the trust graph, so the search is restricted to SCCs
//     that actually contain quorums.
//  2. A depth-first enumeration of candidate quorums prunes any branch
//     whose committed nodes cannot be extended to a quorum using the
//     still-available nodes (a greatest-fixpoint computation).
//  3. Once a minimal quorum is found, its supersets need not be explored:
//     if any quorum is disjoint from some other quorum, a minimal one is.
package quorum

import (
	"fmt"
	"sort"

	"stellar/internal/fba"
)

// Result reports the outcome of a quorum-intersection check.
type Result struct {
	// HasQuorum indicates at least one quorum exists among the nodes.
	HasQuorum bool
	// Intersects is true when every pair of quorums shares a node. It is
	// vacuously true when no quorum exists.
	Intersects bool
	// Disjoint1 and Disjoint2 witness a violation when Intersects is
	// false: two quorums with empty intersection.
	Disjoint1, Disjoint2 fba.NodeSet
	// QuorumsExamined counts the minimal quorums the search visited,
	// reported so operators can see how hard their topology is to check.
	QuorumsExamined int
	// SCCs is the number of strongly connected components of the trust
	// graph that contain at least one quorum.
	SCCs int
}

// CheckIntersection determines whether the FBA system given by qsets enjoys
// quorum intersection. Nodes without a known quorum set cannot join any
// quorum (the conservative reading used for safety analysis).
func CheckIntersection(qsets fba.QuorumSets) Result {
	all := make(fba.NodeSet)
	for id := range qsets {
		all.Add(id)
	}
	var res Result

	// Rule 1: restrict attention to SCCs of the trust graph.
	sccs := stronglyConnectedComponents(qsets)
	var quorumSCCs []fba.NodeSet
	for _, scc := range sccs {
		if q := fba.MaxQuorumWithin(scc, qsets); len(q) > 0 {
			quorumSCCs = append(quorumSCCs, scc)
		}
	}
	res.SCCs = len(quorumSCCs)
	if len(quorumSCCs) == 0 {
		res.Intersects = true // vacuous: no quorums at all
		return res
	}
	res.HasQuorum = true
	if len(quorumSCCs) > 1 {
		// Quorums in two different SCCs are disjoint by construction.
		res.Intersects = false
		res.Disjoint1 = fba.MaxQuorumWithin(quorumSCCs[0], qsets)
		res.Disjoint2 = fba.MaxQuorumWithin(quorumSCCs[1], qsets)
		return res
	}

	scc := quorumSCCs[0]
	q1, q2, examined := findDisjointQuorums(scc, qsets)
	res.QuorumsExamined = examined
	if q1 != nil {
		res.Intersects = false
		res.Disjoint1, res.Disjoint2 = q1, q2
		return res
	}
	res.Intersects = true
	return res
}

// findDisjointQuorums searches the node set for a minimal quorum whose
// complement still contains a quorum. It returns the witnesses, or nils,
// plus the number of minimal quorums examined.
func findDisjointQuorums(universe fba.NodeSet, qsets fba.QuorumSets) (fba.NodeSet, fba.NodeSet, int) {
	sys := buildSystem(qsets)
	uni := sys.toBitset(universe)
	examined := 0

	var q1, q2 bitset
	// DFS over include/exclude decisions with fixpoint pruning, on the
	// bitset representation.
	var rec func(candidate, avail bitset) bool
	rec = func(candidate, avail bitset) bool {
		// Rule 2a: prune when candidate cannot grow into a quorum using
		// only available nodes.
		reach := candidate.copy()
		reach.or(avail)
		ext := sys.maxQuorum(reach)
		if ext.empty() || !candidate.subset(ext) {
			return false
		}
		// Rule 2b: prune when the complement of candidate can no longer
		// contain any quorum — no extension of candidate can then be
		// disjoint from another quorum.
		comp := uni.copy()
		comp.andNot(candidate)
		other := sys.maxQuorum(comp)
		if other.empty() {
			return false
		}
		if !candidate.empty() && sys.isQuorumBits(candidate) {
			// Rule 3: candidate is a quorum, and rule 2b just proved a
			// quorum survives in its complement — a disjoint pair.
			examined++
			q1, q2 = candidate.copy(), other
			return true
		}
		// Branch on the next undecided node the extension proves usable.
		pick := -1
		ext.forEach(func(i int) {
			if pick < 0 && avail.has(i) && !candidate.has(i) {
				pick = i
			}
		})
		if pick < 0 {
			return false
		}
		avail.clear(pick)
		candidate.set(pick)
		if rec(candidate, avail) {
			return true
		}
		candidate.clear(pick)
		if rec(candidate, avail) {
			return true
		}
		avail.set(pick)
		return false
	}
	rec(newBitset(len(sys.ids)), uni.copy())
	if q1 == nil {
		return nil, nil, examined
	}
	return sys.toNodeSet(q1), sys.toNodeSet(q2), examined
}

// stronglyConnectedComponents computes the SCCs of the trust graph (edge
// u→v when v appears in u's quorum set) using Tarjan's algorithm.
func stronglyConnectedComponents(qsets fba.QuorumSets) []fba.NodeSet {
	ids := make([]fba.NodeID, 0, len(qsets))
	for id := range qsets {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })

	adj := make(map[fba.NodeID][]fba.NodeID, len(qsets))
	for _, u := range ids {
		members := qsets[u].Members()
		for _, v := range members.Sorted() {
			if v != u {
				if _, known := qsets[v]; known {
					adj[u] = append(adj[u], v)
				}
			}
		}
	}

	index := make(map[fba.NodeID]int)
	low := make(map[fba.NodeID]int)
	onStack := make(map[fba.NodeID]bool)
	var stack []fba.NodeID
	var out []fba.NodeSet
	next := 0

	var strongconnect func(v fba.NodeID)
	strongconnect = func(v fba.NodeID) {
		index[v] = next
		low[v] = next
		next++
		stack = append(stack, v)
		onStack[v] = true
		for _, w := range adj[v] {
			if _, seen := index[w]; !seen {
				strongconnect(w)
				if low[w] < low[v] {
					low[v] = low[w]
				}
			} else if onStack[w] && index[w] < low[v] {
				low[v] = index[w]
			}
		}
		if low[v] == index[v] {
			comp := make(fba.NodeSet)
			for {
				w := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onStack[w] = false
				comp.Add(w)
				if w == v {
					break
				}
			}
			out = append(out, comp)
		}
	}
	for _, id := range ids {
		if _, seen := index[id]; !seen {
			strongconnect(id)
		}
	}
	return out
}

// String summarizes the result for operators.
func (r Result) String() string {
	switch {
	case !r.HasQuorum:
		return "no quorums exist (network cannot make progress)"
	case r.Intersects:
		return fmt.Sprintf("enjoys quorum intersection (%d minimal quorums examined)", r.QuorumsExamined)
	default:
		return fmt.Sprintf("DISJOINT QUORUMS: %s vs %s", r.Disjoint1, r.Disjoint2)
	}
}
