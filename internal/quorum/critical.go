package quorum

import (
	"sort"

	"stellar/internal/fba"
)

// Criticality analysis (paper §6.2.2): detect when the collective
// configuration is one misconfiguration away from admitting disjoint
// quorums. For each organization, the checker replaces the org's validator
// configurations with a simulated worst case — each validator becomes
// "malleable", satisfied by any single other node in the network, so it
// will happily complete a quorum on either side of a potential split — and
// re-runs the intersection checker. Organizations whose worst-case
// misconfiguration breaks intersection are reported as critical.
//
// The malleable model (rather than, say, a singleton self-quorum) captures
// the §6 incident: the risk is a split of the real network enabled by one
// org's misconfiguration, where both sides contain honest participants. A
// self-quorum model would make a lone misconfigured node a "quorum" by
// itself and flag every organization, drowning the signal.

// Org groups the validators run by one organization.
type Org struct {
	Name       string
	Validators []fba.NodeID
}

// CriticalityReport lists organizations posing a misconfiguration risk.
type CriticalityReport struct {
	// Critical holds the names of orgs whose worst-case misconfiguration
	// admits disjoint quorums.
	Critical []string
	// Checks counts intersection checks performed.
	Checks int
}

// AnyCritical reports whether any organization is critical.
func (r CriticalityReport) AnyCritical() bool { return len(r.Critical) > 0 }

// CheckCriticality runs the §6.2.2 analysis over the given orgs.
func CheckCriticality(qsets fba.QuorumSets, orgs []Org) CriticalityReport {
	var rep CriticalityReport
	for _, org := range orgs {
		mis := worstCaseMisconfig(qsets, org.Validators)
		rep.Checks++
		res := CheckIntersection(mis)
		if res.HasQuorum && !res.Intersects {
			rep.Critical = append(rep.Critical, org.Name)
		}
	}
	sort.Strings(rep.Critical)
	return rep
}

// worstCaseMisconfig returns a copy of qsets where each listed validator
// has been made malleable: its quorum set is satisfied by any single node
// outside the group, so it imposes no agreement requirements of its own and
// can join either side of a split — but it cannot form a quorum together
// with only other group members.
func worstCaseMisconfig(qsets fba.QuorumSets, validators []fba.NodeID) fba.QuorumSets {
	group := fba.NewNodeSet(validators...)
	var others []fba.NodeID
	for id := range qsets {
		if !group.Has(id) {
			others = append(others, id)
		}
	}
	sort.Slice(others, func(i, j int) bool { return others[i] < others[j] })
	out := make(fba.QuorumSets, len(qsets))
	for id, q := range qsets {
		out[id] = q
	}
	if len(others) == 0 {
		return out // the group is the whole network; nothing to model
	}
	malleable := fba.QuorumSet{Threshold: 1, Validators: others}
	for _, v := range validators {
		if _, known := out[v]; !known {
			continue
		}
		out[v] = &malleable
	}
	return out
}

// GroupByPrefix infers organizations from node IDs of the form
// "<org>-<n>", a convenience for simulated topologies.
func GroupByPrefix(qsets fba.QuorumSets) []Org {
	groups := make(map[string][]fba.NodeID)
	for id := range qsets {
		name := string(id)
		for i := len(name) - 1; i >= 0; i-- {
			if name[i] == '-' {
				name = name[:i]
				break
			}
		}
		groups[name] = append(groups[name], id)
	}
	names := make([]string, 0, len(groups))
	for n := range groups {
		names = append(names, n)
	}
	sort.Strings(names)
	out := make([]Org, 0, len(names))
	for _, n := range names {
		vs := groups[n]
		sort.Slice(vs, func(i, j int) bool { return vs[i] < vs[j] })
		out = append(out, Org{Name: n, Validators: vs})
	}
	return out
}
