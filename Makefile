GO ?= go

.PHONY: all build test race vet fmt check bench

all: check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

fmt:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

# check is the full local gate: formatting, static analysis, and the race
# detector over the whole tree.
check: fmt vet race

bench:
	$(GO) test -run '^$$' -bench 'BenchmarkSCPRound|BenchmarkBaseline' -count 3 .
