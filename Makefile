GO ?= go

# CHAOS_SEEDS widens the randomized chaos sweeps (see internal/chaos and
# the nightly CI job); unset, the tests run their small default sweeps.
CHAOS_SEEDS ?=

# FUZZTIME is how long each native fuzz target runs under `make fuzz`.
FUZZTIME ?= 30s

# APPLY_WORKERS is a comma list of worker counts the parallel-apply
# property tests sweep (default 1,2,4,8); `make race APPLY_WORKERS=...`
# narrows or widens the matrix.
APPLY_WORKERS ?=

# TRACE_OUT is where trace-smoke writes its Chrome trace artifact.
TRACE_OUT ?= trace-smoke.json

# NODE_SMOKE_DIR is where node-smoke writes the per-node logs CI uploads.
NODE_SMOKE_DIR ?= node-smoke-logs

# CATCHUP_SMOKE_DIR is where catchup-smoke writes logs and the fetched
# archive CI uploads.
CATCHUP_SMOKE_DIR ?= catchup-smoke-logs

# OBS_SMOKE_DIR is where bench-cluster writes the per-node logs CI uploads.
OBS_SMOKE_DIR ?= obs-smoke-logs

# INGRESS_SMOKE_DIR is where ingress-smoke writes the per-node logs CI uploads.
INGRESS_SMOKE_DIR ?= ingress-smoke-logs

# ALERTS_SMOKE_DIR is where alerts-smoke writes logs and crash bundles CI uploads.
ALERTS_SMOKE_DIR ?= alerts-smoke-logs

# STATICCHECK is the staticcheck binary `make check` uses when present.
STATICCHECK ?= staticcheck

.PHONY: all build test race vet fmt staticcheck check bench bench-smoke trace-smoke fuzz chaos soak node-smoke catchup-smoke bench-cluster ingress-smoke alerts-smoke

all: check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	APPLY_WORKERS=$(APPLY_WORKERS) $(GO) test -race ./...

vet:
	$(GO) vet ./...

fmt:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

# staticcheck runs honnef.co/go/tools when the binary is available and
# degrades to a notice when it is not: contributors without the tool still
# get the rest of the gate, while CI pins and installs it so the check
# always runs there.
staticcheck:
	@if command -v $(STATICCHECK) >/dev/null 2>&1; then \
		$(STATICCHECK) ./...; \
	else \
		echo "staticcheck not installed; skipping (CI runs it pinned)"; \
	fi

# check is the full local gate: formatting, static analysis, and the race
# detector over the whole tree. CI's push gate runs exactly this.
check: fmt vet staticcheck race

bench:
	$(GO) test -run '^$$' -bench 'BenchmarkSCPRound|BenchmarkBaseline|BenchmarkVerifyTxSet|BenchmarkApplyTxSetParallel|BenchmarkBucketRehash' -count 3 .

# bench-smoke runs each benchmark once — a fast regression tripwire for CI,
# not a measurement — plus the nil-tracer overhead budget (tracing off
# must cost <1% of a consensus round).
bench-smoke:
	$(GO) test -run '^$$' -bench 'BenchmarkSCPRound|BenchmarkBaseline|BenchmarkVerifyTxSet|BenchmarkApplyTxSetParallel|BenchmarkBucketRehash' -benchtime 1x .
	TRACE_OVERHEAD=1 $(GO) test -run '^TestNilTracerOverhead$$' -v .

# trace-smoke runs a short traced simulation, validates the exported
# Chrome trace (schema + full parent-linked tx lifecycle), and prints the
# latency decomposition. CI uploads $(TRACE_OUT) as an artifact.
trace-smoke:
	$(GO) run ./cmd/stellar-sim -validators 4 -accounts 500 -rate 20 -duration 40s \
		-archive $$(mktemp -d) -trace $(TRACE_OUT) -decompose
	$(GO) run ./cmd/tracecheck -lifecycle $(TRACE_OUT)

# fuzz runs each native fuzz target for FUZZTIME. Go permits only one
# -fuzz pattern per invocation, hence one run per target.
fuzz:
	$(GO) test ./internal/xdr/ -run '^$$' -fuzz '^FuzzTxDecodeRoundTrip$$' -fuzztime $(FUZZTIME)
	$(GO) test ./internal/xdr/ -run '^$$' -fuzz '^FuzzQuorumSetDecodeRoundTrip$$' -fuzztime $(FUZZTIME)
	$(GO) test ./internal/ledger/ -run '^$$' -fuzz '^FuzzCheckSignatures$$' -fuzztime $(FUZZTIME)
	$(GO) test ./internal/ledger/ -run '^$$' -fuzz '^FuzzReadWriteSets$$' -fuzztime $(FUZZTIME)
	$(GO) test ./internal/transport/ -run '^$$' -fuzz '^FuzzFrameDecode$$' -fuzztime $(FUZZTIME)

# bench-cluster boots a 3-process TCP quorum with live tracing, drives
# payment load through horizon (scripts/bench-cluster.sh), and publishes
# BENCH_cluster.json plus the merged cluster-trace.json — validated by
# `stellar-obs check` and `tracecheck -cluster`. It then regenerates
# BENCH_micro.json from one pass of the microbenchmarks.
bench-cluster:
	OBS_SMOKE_DIR=$(OBS_SMOKE_DIR) ./scripts/bench-cluster.sh
	$(GO) test -run '^$$' -bench 'BenchmarkSCPRound|BenchmarkBaseline|BenchmarkVerifyTxSet|BenchmarkApplyTxSetParallel|BenchmarkBucketRehash' -benchtime 1x . \
		| $(GO) run ./cmd/benchtables -bench-json BENCH_micro.json

# node-smoke boots a 3-process TCP quorum (cmd/stellar-node), waits for
# ledger 20 on every node, and cross-checks header hashes over HTTP;
# logs land in $(NODE_SMOKE_DIR) for CI artifact upload.
node-smoke:
	NODE_SMOKE_DIR=$(NODE_SMOKE_DIR) ./scripts/node-smoke.sh

# catchup-smoke boots a 3-process archiving TCP quorum to ledger 30, then
# cold-starts a 4th node with an empty -data-dir and -catchup: it must
# fetch the archive over the wire, replay to the tip, join the quorum,
# and close 5 more byte-identical ledgers (DESIGN.md Â§16).
catchup-smoke:
	CATCHUP_SMOKE_DIR=$(CATCHUP_SMOKE_DIR) ./scripts/catchup-smoke.sh

# ingress-smoke boots a 3-process TCP quorum with a tiny mempool, ramps
# offered load with the ceiling probe until the ingress answers 429, and
# asserts the backpressure contract (valid Retry-After, surge-fee hints,
# zero accepted-then-lost). Publishes the probe-extended BENCH_cluster.json.
ingress-smoke:
	OBS_SMOKE_DIR=$(INGRESS_SMOKE_DIR) ./scripts/ingress-smoke.sh

# alerts-smoke boots a 3-process TCP quorum with the detection stack on,
# wedges two validators with SIGSTOP, and asserts the alerting loop end
# to end: close_stall and quorum_unavailable fire on the survivor, the
# watchdog dumps a crash bundle, and every alert resolves after SIGCONT.
alerts-smoke:
	ALERTS_SMOKE_DIR=$(ALERTS_SMOKE_DIR) ./scripts/alerts-smoke.sh

# chaos runs the fault-injection acceptance scenarios (partition +
# Byzantine equivocators + heal across 20 seeds, plus the soak sweep).
chaos:
	$(GO) test ./internal/chaos/ ./internal/experiments/ -run 'Chaos|PartitionHeal|RandomScenario' -v

# soak is the nightly-sized run: every chaos sweep widened by CHAOS_SEEDS
# and repeated, plus the long experiments soaks.
soak:
	CHAOS_SEEDS=$(or $(CHAOS_SEEDS),40) $(GO) test ./internal/chaos/ ./internal/experiments/ -count 2 -timeout 45m
