// Benchmarks regenerating the paper's evaluation (§7): one benchmark per
// table and figure (experiment index in DESIGN.md), plus micro-benchmarks
// for the subsystems whose cost the paper discusses. Latencies inside the
// network simulations are virtual-time measurements reported as custom
// metrics; Go's ns/op for those benches measures the real cost of
// simulating, not the system's latency.
package stellar

import (
	"fmt"
	"os"
	"runtime"
	"testing"
	"time"

	"stellar/internal/bucket"
	"stellar/internal/experiments"
	"stellar/internal/fba"
	"stellar/internal/ledger"
	"stellar/internal/obs"
	"stellar/internal/qconfig"
	"stellar/internal/quorum"
	"stellar/internal/scp"
	"stellar/internal/stellarcrypto"
	"stellar/internal/verify"
)

func msf(d time.Duration) float64 { return float64(d.Microseconds()) / 1000 }

// BenchmarkMessagesPerLedger is E1 (§7.2): SCP envelopes per ledger.
func BenchmarkMessagesPerLedger(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunMessagesPerLedger(10)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.MeanPerLedger, "msgs/ledger")
	}
}

// BenchmarkTimeoutProfile is E2 (Figure 8): timeout percentiles on
// degraded links.
func BenchmarkTimeoutProfile(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunTimeoutProfile(20)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(res.Nomination99), "nom-timeouts-p99")
		b.ReportMetric(float64(res.Balloting99), "ballot-timeouts-p99")
	}
}

// BenchmarkLatencyVsAccounts is E3 (Figure 9).
func BenchmarkLatencyVsAccounts(b *testing.B) {
	for _, accounts := range []int{1_000, 10_000, 100_000} {
		b.Run(fmt.Sprintf("accounts=%d", accounts), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				rows, err := experiments.RunAccountsSweep([]int{accounts}, 5)
				if err != nil {
					b.Fatal(err)
				}
				r := rows[0]
				b.ReportMetric(msf(r.Nomination), "nominate-ms")
				b.ReportMetric(msf(r.Balloting), "ballot-ms")
				b.ReportMetric(msf(r.LedgerUpdate), "ledgerupd-ms")
			}
		})
	}
}

// BenchmarkLatencyVsLoad is E4 (Figure 10).
func BenchmarkLatencyVsLoad(b *testing.B) {
	for _, rate := range []float64{100, 200, 300} {
		b.Run(fmt.Sprintf("rate=%.0f", rate), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				rows, err := experiments.RunLoadSweep([]float64{rate}, 10_000, 5)
				if err != nil {
					b.Fatal(err)
				}
				r := rows[0]
				b.ReportMetric(msf(r.LedgerUpdate), "ledgerupd-ms")
				b.ReportMetric(r.TxPerLedger, "tx/ledger")
			}
		})
	}
}

// BenchmarkLatencyVsValidators is E5 (Figure 11).
func BenchmarkLatencyVsValidators(b *testing.B) {
	for _, n := range []int{4, 10, 19} {
		b.Run(fmt.Sprintf("validators=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				rows, err := experiments.RunValidatorsSweep([]int{n}, 2_000, 4)
				if err != nil {
					b.Fatal(err)
				}
				r := rows[0]
				b.ReportMetric(msf(r.Nomination), "nominate-ms")
				b.ReportMetric(msf(r.Balloting), "ballot-ms")
			}
		})
	}
}

// BenchmarkBaseline is E6/E7 (§7.3): the baseline experiment and close
// rate.
func BenchmarkBaseline(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunBaseline(10_000, 8)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.TxPerLedgerMean, "tx/ledger")
		b.ReportMetric(res.Row.CloseMean.Seconds(), "close-s")
	}
}

// BenchmarkValidatorCost is E8 (§7.4).
func BenchmarkValidatorCost(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunValidatorCost(10, 5_000, 6)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.InboundMbitSec, "in-Mbit/s")
		b.ReportMetric(res.HeapMiB, "heap-MiB")
	}
}

// BenchmarkQuorumIntersection is E9/E10 (§6.2): the checker on tiered
// topologies of growing size.
func BenchmarkQuorumIntersection(b *testing.B) {
	for _, orgs := range []int{5, 7, 9} {
		cfg := qconfig.SimulatedNetwork(orgs, 3, qconfig.High)
		qs, err := cfg.QuorumSets()
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("orgs=%d", orgs), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res := quorum.CheckIntersection(qs)
				if !res.Intersects {
					b.Fatal("intersection violated")
				}
			}
		})
	}
}

// BenchmarkCriticality is the E10 companion: per-org worst-case analysis.
func BenchmarkCriticality(b *testing.B) {
	cfg := qconfig.SimulatedNetwork(5, 3, qconfig.High)
	qs, err := cfg.QuorumSets()
	if err != nil {
		b.Fatal(err)
	}
	orgs := quorum.GroupByPrefix(qs)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep := quorum.CheckCriticality(qs, orgs)
		if rep.AnyCritical() {
			b.Fatal("unexpected critical org")
		}
	}
}

// BenchmarkSCPvsPBFT is E11: the closed-membership baseline comparison.
func BenchmarkSCPvsPBFT(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.RunSCPvsPBFT([]int{4})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(msf(rows[0].SCPLatency), "scp-ms")
		b.ReportMetric(msf(rows[0].PBFTLatency), "pbft-ms")
	}
}

// BenchmarkTimeoutPolicy is the DESIGN §4 ablation: ballot timeout growth.
func BenchmarkTimeoutPolicy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.RunTimeoutPolicyAblation(6)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(rows[0].CloseMean.Seconds(), "linear-close-s")
		b.ReportMetric(rows[len(rows)-1].CloseMean.Seconds(), "const-close-s")
	}
}

// --- micro-benchmarks on the subsystems the paper's costs come from ---

// BenchmarkBucketSpill measures bucket-list ingestion including spills,
// the "overhead of merging buckets, which get larger" of Figure 9.
func BenchmarkBucketSpill(b *testing.B) {
	for _, preload := range []int{1_000, 100_000} {
		b.Run(fmt.Sprintf("entries=%d", preload), func(b *testing.B) {
			l := bucket.NewList()
			var batch []bucket.Entry
			for i := 0; i < preload; i++ {
				batch = append(batch, bucket.Entry{
					Key:  fmt.Sprintf("a|acct%08d", i),
					Data: []byte("balance"),
				})
			}
			l.AddBatch(1, batch)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				var delta []bucket.Entry
				for j := 0; j < 100; j++ {
					delta = append(delta, bucket.Entry{
						Key:  fmt.Sprintf("a|acct%08d", (i*100+j)%preload),
						Data: []byte("changed"),
					})
				}
				l.AddBatch(uint32(i+2), delta)
			}
		})
	}
}

// BenchmarkLedgerApplyPayment measures raw payment throughput of the
// transaction engine.
func BenchmarkLedgerApplyPayment(b *testing.B) {
	networkID := stellarcrypto.HashBytes([]byte("bench"))
	masterKP := stellarcrypto.KeyPairFromString("bench-master")
	master := ledger.AccountIDFromPublicKey(masterKP.Public)
	st := ledger.NewGenesisState(master)
	aliceKP := stellarcrypto.KeyPairFromString("bench-alice")
	alice := ledger.AccountIDFromPublicKey(aliceKP.Public)
	env := &ledger.ApplyEnv{LedgerSeq: 2, CloseTime: 1}
	setup := &ledger.Transaction{
		Source: master, Fee: ledger.DefaultBaseFee, SeqNum: 1,
		Operations: []ledger.Operation{{
			Body: &ledger.CreateAccount{Destination: alice, StartingBalance: ledger.TotalSupply / 2},
		}},
	}
	setup.Sign(networkID, masterKP)
	if res := st.ApplyTransaction(setup, networkID, env); !res.Success {
		b.Fatal(res.Err)
	}
	seq := st.Account(alice).SeqNum
	txs := make([]*ledger.Transaction, b.N)
	for i := range txs {
		txs[i] = &ledger.Transaction{
			Source: alice, Fee: ledger.DefaultBaseFee, SeqNum: seq + uint64(i) + 1,
			Operations: []ledger.Operation{{
				Body: &ledger.Payment{Destination: master, Asset: ledger.NativeAsset(), Amount: 1},
			}},
		}
		txs[i].Sign(networkID, aliceKP)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if res := st.ApplyTransaction(txs[i], networkID, env); !res.Success {
			b.Fatal(res.Err)
		}
	}
}

// BenchmarkVerifyTxSet measures applying a 256-transaction set three
// ways: without a verifier (direct ed25519 per check, the retained
// sequential reference), with a cold per-iteration verifier (parallel
// prepass pays for the cache fills), and with a warm persistent verifier
// (steady state: nomination already verified every transaction, so apply
// is all cache hits). All variants must produce identical results
// hashes — the equivalence the pipeline property test proves per-seed.
func BenchmarkVerifyTxSet(b *testing.B) {
	networkID := stellarcrypto.HashBytes([]byte("bench-verify"))
	masterKP := stellarcrypto.KeyPairFromString("bench-verify-master")
	master := ledger.AccountIDFromPublicKey(masterKP.Public)
	st0 := ledger.NewGenesisState(master)

	const nAccounts, txPerAccount = 64, 4
	kps := stellarcrypto.DeterministicKeyPairs("bench-verify-acct", nAccounts)
	setup := &ledger.Transaction{Source: master, SeqNum: 1}
	for _, kp := range kps {
		setup.Operations = append(setup.Operations, ledger.Operation{
			Body: &ledger.CreateAccount{
				Destination:     ledger.AccountIDFromPublicKey(kp.Public),
				StartingBalance: 1000 * ledger.One,
			},
		})
	}
	setup.Fee = st0.MinFee(setup)
	setup.Sign(networkID, masterKP)
	env := &ledger.ApplyEnv{LedgerSeq: 2, CloseTime: 1}
	if res := st0.ApplyTransaction(setup, networkID, env); !res.Success {
		b.Fatal(res.Err)
	}
	snapshot := st0.SnapshotAll()

	ts := &ledger.TxSet{}
	seqBase := uint64(env.LedgerSeq) << 32
	for i, kp := range kps {
		src := ledger.AccountIDFromPublicKey(kp.Public)
		dst := ledger.AccountIDFromPublicKey(kps[(i+1)%nAccounts].Public)
		for j := 0; j < txPerAccount; j++ {
			tx := &ledger.Transaction{
				Source: src, Fee: ledger.DefaultBaseFee, SeqNum: seqBase + uint64(j) + 1,
				Operations: []ledger.Operation{{
					Body: &ledger.Payment{Destination: dst, Asset: ledger.NativeAsset(), Amount: 1},
				}},
			}
			tx.Sign(networkID, kp)
			ts.Txs = append(ts.Txs, tx)
		}
	}

	var refHash stellarcrypto.Hash
	iter := func(b *testing.B, v *verify.Verifier) {
		b.StopTimer()
		st, err := ledger.RestoreState(snapshot, nil)
		if err != nil {
			b.Fatal(err)
		}
		if v != nil {
			st.SetVerifier(v)
		}
		b.StartTimer()
		results, rh := st.ApplyTxSet(ts, networkID, &ledger.ApplyEnv{LedgerSeq: 3, CloseTime: 2})
		b.StopTimer()
		for _, r := range results {
			if !r.Success {
				b.Fatal(r.Err)
			}
		}
		if refHash == (stellarcrypto.Hash{}) {
			refHash = rh
		} else if rh != refHash {
			b.Fatalf("results hash diverged: %x != %x", rh, refHash)
		}
		b.StartTimer()
	}

	b.Run("sequential", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			iter(b, nil)
		}
	})
	b.Run("parallel-cold", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			iter(b, verify.New(0, 1<<16))
		}
	})
	b.Run("cached-warm", func(b *testing.B) {
		v := verify.New(0, 1<<16)
		// Warm the cache the way nomination does before apply ever runs.
		iter(b, v)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			iter(b, v)
		}
		s := v.Cache.Stats()
		b.ReportMetric(100*s.HitRate(), "hit-%")
	})
}

// BenchmarkApplyTxSetParallel measures conflict-graph-scheduled apply
// (DESIGN §14) against the sequential reference on two workloads: 128
// pairwise-disjoint payments (every transaction its own component) and a
// 50%-conflict mix where half the transactions pay one hot destination
// (one 64-transaction component that serializes internally). Results
// hashes must match across every worker count — the same byte-identity
// the pipeline property harness proves per-seed.
//
// Two numbers come out per variant. ns/op (and ops/s) is the wall-clock
// cost on this host — it only scales when real cores back the workers.
// sched-speedup is host-independent: total transactions over the
// schedule's measured critical path (ledger.ApplySchedule), i.e. the
// parallelism the conflict structure actually exposed. On the disjoint
// workload it reaches the worker count; on the 50%-conflict workload the
// hot component caps it at 2 regardless of workers (Amdahl's bound for
// this mix).
func BenchmarkApplyTxSetParallel(b *testing.B) {
	networkID := stellarcrypto.HashBytes([]byte("bench-apply"))
	masterKP := stellarcrypto.KeyPairFromString("bench-apply-master")
	master := ledger.AccountIDFromPublicKey(masterKP.Public)
	st0 := ledger.NewGenesisState(master)

	const nTxs = 128
	kps := stellarcrypto.DeterministicKeyPairs("bench-apply-acct", 2*nTxs)
	ids := make([]ledger.AccountID, len(kps))
	for i, kp := range kps {
		ids[i] = ledger.AccountIDFromPublicKey(kp.Public)
	}
	const chunk = 64
	for c := 0; c < len(ids); c += chunk {
		setup := &ledger.Transaction{Source: master, SeqNum: uint64(c/chunk) + 1}
		for _, id := range ids[c : c+chunk] {
			setup.Operations = append(setup.Operations, ledger.Operation{
				Body: &ledger.CreateAccount{Destination: id, StartingBalance: 1000 * ledger.One},
			})
		}
		setup.Fee = st0.MinFee(setup)
		setup.Sign(networkID, masterKP)
		if res := st0.ApplyTransaction(setup, networkID, &ledger.ApplyEnv{LedgerSeq: 2, CloseTime: 1}); !res.Success {
			b.Fatal(res.Err)
		}
	}
	snapshot := st0.SnapshotAll()

	seqBase := uint64(2) << 32
	buildSet := func(dst func(i int) ledger.AccountID) *ledger.TxSet {
		ts := &ledger.TxSet{}
		for i := 0; i < nTxs; i++ {
			tx := &ledger.Transaction{
				Source: ids[i], Fee: ledger.DefaultBaseFee, SeqNum: seqBase + 1,
				Operations: []ledger.Operation{{
					Body: &ledger.Payment{Destination: dst(i), Asset: ledger.NativeAsset(), Amount: 1},
				}},
			}
			tx.Sign(networkID, kps[i])
			ts.Txs = append(ts.Txs, tx)
		}
		return ts
	}
	workloads := []struct {
		name string
		ts   *ledger.TxSet
	}{
		// Sources 0..127 pay partners 128..255: no shared keys anywhere.
		{"disjoint", buildSet(func(i int) ledger.AccountID { return ids[nTxs+i] })},
		// Odd sources all pay the same hot partner: half the set collapses
		// into one component that runs serially inside itself.
		{"conflict50", buildSet(func(i int) ledger.AccountID {
			if i%2 == 1 {
				return ids[nTxs+1] // odd partner slots are otherwise unused
			}
			return ids[nTxs+i]
		})},
	}

	for _, wl := range workloads {
		var refHash stellarcrypto.Hash
		for _, workers := range []int{1, 2, 4, 8} {
			b.Run(fmt.Sprintf("%s/workers=%d", wl.name, workers), func(b *testing.B) {
				var sched ledger.ApplySchedule
				for i := 0; i < b.N; i++ {
					b.StopTimer()
					st, err := ledger.RestoreState(snapshot, nil)
					if err != nil {
						b.Fatal(err)
					}
					st.SetApplyWorkers(workers)
					b.StartTimer()
					results, rh := st.ApplyTxSet(wl.ts, networkID, &ledger.ApplyEnv{LedgerSeq: 3, CloseTime: 2})
					b.StopTimer()
					for _, r := range results {
						if !r.Success {
							b.Fatal(r.Err)
						}
					}
					if refHash == (stellarcrypto.Hash{}) {
						refHash = rh
					} else if rh != refHash {
						b.Fatalf("results hash diverged at %d workers: %x != %x", workers, rh, refHash)
					}
					sched = st.LastApplySchedule()
					b.StartTimer()
				}
				if sched.CriticalPathTxs > 0 {
					b.ReportMetric(float64(nTxs)/float64(sched.CriticalPathTxs), "sched-speedup")
				}
				b.ReportMetric(float64(nTxs)*float64(b.N)/b.Elapsed().Seconds(), "ops/s")
			})
		}
	}
}

// BenchmarkBucketRehash measures bucket-list ingestion across 128
// ledgers — including the level merges and rehashes on spills — with the
// merge work sequential (workers=1) versus fanned out across cores.
func BenchmarkBucketRehash(b *testing.B) {
	const ledgers, perLedger = 128, 200
	batches := make([][]bucket.Entry, ledgers)
	for i := range batches {
		for j := 0; j < perLedger; j++ {
			batches[i] = append(batches[i], bucket.Entry{
				Key:  fmt.Sprintf("a|acct%08d", (i*perLedger+j*17)%3000),
				Data: []byte(fmt.Sprintf("balance-%d-%d", i, j)),
			})
		}
	}
	var refHash stellarcrypto.Hash
	for _, workers := range []int{1, runtime.NumCPU()} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				l := bucket.NewList()
				l.SetPool(verify.NewPool(workers))
				for seq := uint32(1); seq <= ledgers; seq++ {
					l.AddBatch(seq, batches[seq-1])
				}
				b.StopTimer()
				if h := l.Hash(); refHash == (stellarcrypto.Hash{}) {
					refHash = h
				} else if h != refHash {
					b.Fatalf("bucket hash diverged across worker counts")
				}
				b.StartTimer()
			}
		})
	}
}

// BenchmarkEnvelopeSignVerify measures the crypto cost of one SCP
// envelope round trip.
func BenchmarkEnvelopeSignVerify(b *testing.B) {
	kp := stellarcrypto.KeyPairFromString("bench-validator")
	id := fba.NodeIDFromPublicKey(kp.Public)
	env := &scp.Envelope{
		Node: id, Slot: 1, Seq: 1,
		QSet:      fba.Majority(id),
		Statement: scp.Statement{Type: scp.StmtNominate, Votes: []scp.Value{scp.Value("v")}},
	}
	pk := kp.Public
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		env.Signature = kp.Secret.Sign(env.SigningPayload())
		if !pk.Verify(env.SigningPayload(), env.Signature) {
			b.Fatal("verify failed")
		}
	}
}

// scpRoundBench measures one full consensus round (nominate →
// externalize) for a 4-node network in simulation, with or without the
// causal span tracer attached.
func scpRoundBench(trace bool) func(b *testing.B) {
	return func(b *testing.B) {
		s, err := experiments.Build(experiments.Options{
			Validators: 4, Accounts: 64, NoLoad: true, LedgerInterval: time.Second,
			Trace: trace,
		})
		if err != nil {
			b.Fatal(err)
		}
		s.Start()
		s.Run(3 * time.Second) // warm-up: first ledger closes
		b.ResetTimer()
		start := s.Nodes[0].LastHeader().LedgerSeq
		for i := 0; i < b.N; i++ {
			s.Run(1200 * time.Millisecond)
		}
		b.StopTimer()
		closed := int(s.Nodes[0].LastHeader().LedgerSeq - start)
		if closed == 0 {
			b.Fatal("no ledgers closed")
		}
		b.ReportMetric(float64(closed)/float64(b.N), "ledgers/iter")
	}
}

// BenchmarkSCPRound is the tracing-off configuration — every node runs
// with a nil tracer, so the instrumentation reduces to nil checks.
func BenchmarkSCPRound(b *testing.B) { scpRoundBench(false)(b) }

// BenchmarkSCPRoundTraced attaches the span tracer, for measuring what
// -trace costs when it is actually on.
func BenchmarkSCPRoundTraced(b *testing.B) { scpRoundBench(true)(b) }

// TestNilTracerOverhead (gated on TRACE_OVERHEAD=1; bench-smoke runs it)
// bounds what the span instrumentation adds to BenchmarkSCPRound when
// tracing is disabled. It measures the nil-tracer fast path directly,
// scales it by a generous per-ledger call-site budget, and asserts the
// result stays under 1% of the real cost of closing one ledger.
func TestNilTracerOverhead(t *testing.T) {
	if os.Getenv("TRACE_OVERHEAD") == "" {
		t.Skip("set TRACE_OVERHEAD=1 to run the nil-tracer overhead budget")
	}

	// (a) one bundle of nil-receiver tracer calls — the exact methods the
	// herder and ledger issue on the hot path.
	const opsPerBundle = 9
	nilRes := testing.Benchmark(func(b *testing.B) {
		var tr *obs.Tracer
		for i := 0; i < b.N; i++ {
			p := tr.Proc("node")
			sp := p.Span("consensus", obs.SpanSlot)
			c := sp.Child(obs.SpanNomination)
			c.End()
			sp.CompleteChild(obs.SpanBucketMerge, 0)
			sp.Arg("slot", "1")
			sp.EndAfter(0)
			sp.End()
			tr.Flow(sp, c)
		}
	})
	nsPerCall := float64(nilRes.NsPerOp()) / opsPerBundle

	// (b) the real cost of one consensus round, untraced.
	simRes := testing.Benchmark(scpRoundBench(false))
	ledgersPerIter := simRes.Extra["ledgers/iter"]
	if ledgersPerIter <= 0 {
		t.Fatal("SCP round benchmark closed no ledgers")
	}
	nsPerLedger := float64(simRes.NsPerOp()) / ledgersPerIter

	// Budget: 4 validators × (a full tx lifecycle for every one of the
	// ~100 transactions a ledger can carry + the slot's own span tree),
	// far above the real call counts.
	const callsPerLedger = 4 * (100*10 + 50)
	overhead := nsPerCall * callsPerLedger
	limit := nsPerLedger / 100 // 1%
	t.Logf("nil-tracer call: %.2f ns; ledger close: %.0f ns; budgeted overhead %.0f ns (%.3f%%)",
		nsPerCall, nsPerLedger, overhead, 100*overhead/nsPerLedger)
	if overhead >= limit {
		t.Fatalf("nil-tracer path too slow: %d budgeted calls × %.2f ns = %.0f ns ≥ 1%% of a %.0f ns ledger close",
			callsPerLedger, nsPerCall, overhead, nsPerLedger)
	}
}
