// Quickstart: the core ledger API in one file — create accounts, issue an
// asset (paper §5.1), open a trustline, make payments, place orders on the
// built-in order book, and send a cross-asset path payment (§5.2).
//
// This example drives the transaction engine directly (no consensus); see
// examples/federation for a multi-validator network running SCP.
package main

import (
	"fmt"
	"log"

	"stellar/internal/core"
	"stellar/internal/ledger"
	"stellar/internal/stellarcrypto"
)

func main() {
	networkID := core.HashBytes([]byte("quickstart"))

	// Genesis: the master account holds the XLM supply.
	state, masterKP := core.GenesisState(networkID)
	master := ledger.AccountIDFromPublicKey(masterKP.Public)
	env := &ledger.ApplyEnv{LedgerSeq: 2, CloseTime: 1}

	// Keys for our cast. Deterministic seeds keep the run reproducible.
	bankKP := core.KeyPairFromString("first-national-bank")
	aliceKP := core.KeyPairFromString("alice")
	bobKP := core.KeyPairFromString("bob")
	bank := ledger.AccountIDFromPublicKey(bankKP.Public)
	alice := ledger.AccountIDFromPublicKey(aliceKP.Public)
	bob := ledger.AccountIDFromPublicKey(bobKP.Public)

	// apply builds, signs, and applies one transaction, failing loudly.
	apply := func(source ledger.AccountID, kp stellarcrypto.KeyPair, ops ...ledger.Operation) {
		acct := state.Account(source)
		tx := &ledger.Transaction{
			Source:     source,
			Fee:        state.MinFee(&ledger.Transaction{Operations: ops}),
			SeqNum:     acct.SeqNum + 1,
			Operations: ops,
		}
		tx.Sign(networkID, kp)
		res := state.ApplyTransaction(tx, networkID, env)
		if !res.Success {
			log.Fatalf("tx failed: %s %v", res.Err, res.OpErrors)
		}
	}

	// 1. Fund three accounts with XLM.
	fmt.Println("1. creating accounts (CreateAccount)")
	apply(master, masterKP,
		ledger.Operation{Body: &ledger.CreateAccount{Destination: bank, StartingBalance: 1000 * core.One}},
		ledger.Operation{Body: &ledger.CreateAccount{Destination: alice, StartingBalance: 100 * core.One}},
		ledger.Operation{Body: &ledger.CreateAccount{Destination: bob, StartingBalance: 100 * core.One}},
	)

	// 2. The bank issues USD; Alice consents by opening a trustline.
	usd, _ := core.NewAsset("USD", bank)
	fmt.Println("2. issuing USD (ChangeTrust + Payment from the issuer mints)")
	apply(alice, aliceKP, ledger.Operation{Body: &ledger.ChangeTrust{Asset: usd, Limit: 10_000 * core.One}})
	apply(bank, bankKP, ledger.Operation{Body: &ledger.Payment{Destination: alice, Asset: usd, Amount: 500 * core.One}})
	fmt.Printf("   alice now holds %s USD\n", core.FormatAmount(state.BalanceOf(alice, usd)))

	// 3. A simple XLM payment.
	fmt.Println("3. paying 25 XLM alice → bob (Payment)")
	apply(alice, aliceKP, ledger.Operation{Body: &ledger.Payment{Destination: bob, Asset: core.NativeAsset(), Amount: 25 * core.One}})

	// 4. The bank makes a market: sells USD for XLM at 2 XLM per USD.
	fmt.Println("4. market making (ManageOffer): bank sells USD at 2 XLM/USD")
	apply(bank, bankKP, ledger.Operation{Body: &ledger.ManageOffer{
		Selling: usd, Buying: core.NativeAsset(),
		Amount: 1000 * core.One, Price: ledger.MustPrice(2, 1),
	}})
	book := state.OffersBook(usd, core.NativeAsset())
	fmt.Printf("   order book now has %d offer(s); best price %s XLM/USD\n", len(book), book[0].Price)

	// 5. Bob pays Alice 10 USD — but Bob only holds XLM. PathPayment
	//    converts through the order book atomically, with bob's cost
	//    capped at 21 XLM (the end-to-end limit price, §1).
	fmt.Println("5. cross-asset payment (PathPayment): bob sends XLM, alice receives USD")
	before := state.BalanceOf(bob, core.NativeAsset())
	apply(bob, bobKP, ledger.Operation{Body: &ledger.PathPayment{
		SendAsset: core.NativeAsset(), SendMax: 21 * core.One,
		Destination: alice, DestAsset: usd, DestAmount: 10 * core.One,
	}})
	fmt.Printf("   bob spent %s XLM; alice now holds %s USD\n",
		core.FormatAmount(before-state.BalanceOf(bob, core.NativeAsset())),
		core.FormatAmount(state.BalanceOf(alice, usd)))

	// 6. Ledger totals.
	fmt.Printf("\nledger: %d accounts, %d trustlines, %d offers; fee pool %s XLM\n",
		state.NumAccounts(), state.NumTrustlines(), state.NumOffers(),
		core.FormatAmount(state.FeePool))
}
