// Remittance: the paper's motivating scenario (§1, §7.1) — "making it
// literally possible to send $0.50 to Mexico in 5 seconds with a fee of
// $0.000001". A US anchor issues USD, a Mexican anchor issues MXN, market
// makers quote USD/MXN on the built-in order book, and a path payment
// moves value end-to-end atomically: no solvency or exchange-rate risk
// from the intermediaries.
//
// This example runs a real 4-validator SCP network on the simulator: the
// remittance rides through nomination, balloting, and externalization
// exactly as it would on the production network.
package main

import (
	"fmt"
	"log"
	"time"

	"stellar/internal/experiments"
	"stellar/internal/ledger"
	"stellar/internal/stellarcrypto"
)

func main() {
	// A 4-validator network at the production 5-second cadence.
	sim, err := experiments.Build(experiments.Options{
		Validators: 4,
		Accounts:   16,   // tiny ledger; the story is the payment path
		NoLoad:     true, // we submit by hand
	})
	if err != nil {
		log.Fatal(err)
	}
	sim.Start()
	node := sim.Nodes[0]
	networkID := sim.NetworkID
	node.OnLedgerClose = func(h *ledger.Header, results []ledger.TxResult) {
		for _, r := range results {
			if !r.Success {
				fmt.Printf("  ! tx failed in ledger %d: %s %v\n", h.LedgerSeq, r.Err, r.OpErrors)
			}
		}
	}

	master := ledger.AccountIDFromPublicKey(sim.MasterKey.Public)
	submit := func(desc string, source ledger.AccountID, kp stellarcrypto.KeyPair, ops ...ledger.Operation) {
		acct := node.State().Account(source)
		tx := &ledger.Transaction{
			Source:     source,
			Fee:        node.State().MinFee(&ledger.Transaction{Operations: ops}),
			SeqNum:     acct.SeqNum + 1,
			Operations: ops,
		}
		tx.Sign(networkID, kp)
		if err := node.SubmitTx(tx); err != nil {
			log.Fatalf("%s: %v", desc, err)
		}
		// Let the network close a ledger with it.
		sim.Run(6 * time.Second)
		fmt.Printf("  ✓ %s (ledger %d)\n", desc, node.LastHeader().LedgerSeq)
	}

	newAccount := func(label string, xlm ledger.Amount) (ledger.AccountID, stellarcrypto.KeyPair) {
		kp := stellarcrypto.KeyPairFromString(label)
		id := ledger.AccountIDFromPublicKey(kp.Public)
		submit("create "+label, master, sim.MasterKey,
			ledger.Operation{Body: &ledger.CreateAccount{Destination: id, StartingBalance: xlm}})
		return id, kp
	}

	fmt.Println("setting up anchors and market makers:")
	usAnchor, usKP := newAccount("us-anchor", 100*ledger.One)
	mxAnchor, mxKP := newAccount("mx-anchor", 100*ledger.One)
	maker, makerKP := newAccount("market-maker", 1000*ledger.One)
	sender, senderKP := newAccount("maria-in-us", 100*ledger.One)
	recipient, _ := newAccount("luis-in-mx", 100*ledger.One)

	usd := ledger.MustAsset("USD", usAnchor)
	mxn := ledger.MustAsset("MXN", mxAnchor)

	fmt.Println("\nissuing anchor tokens (§5.1 trustlines):")
	submit("maker trusts USD+MXN", maker, makerKP,
		ledger.Operation{Body: &ledger.ChangeTrust{Asset: usd, Limit: 1_000_000 * ledger.One}},
		ledger.Operation{Body: &ledger.ChangeTrust{Asset: mxn, Limit: 1_000_000 * ledger.One}})
	submit("sender trusts USD", sender, senderKP,
		ledger.Operation{Body: &ledger.ChangeTrust{Asset: usd, Limit: 1000 * ledger.One}})
	recipientKP := stellarcrypto.KeyPairFromString("luis-in-mx")
	submit("recipient trusts MXN", recipient, recipientKP,
		ledger.Operation{Body: &ledger.ChangeTrust{Asset: mxn, Limit: 1000 * ledger.One}})
	submit("US anchor funds sender with $20", usAnchor, usKP,
		ledger.Operation{Body: &ledger.Payment{Destination: sender, Asset: usd, Amount: 20 * ledger.One}})
	submit("MX anchor funds market maker with 20,000 MXN", mxAnchor, mxKP,
		ledger.Operation{Body: &ledger.Payment{Destination: maker, Asset: mxn, Amount: 20_000 * ledger.One}})

	fmt.Println("\nmarket maker quotes USD/MXN at 17.5 (§5.1 order book):")
	submit("maker sells MXN for USD", maker, makerKP,
		ledger.Operation{Body: &ledger.ManageOffer{
			Selling: mxn, Buying: usd,
			Amount: 10_000 * ledger.One,
			Price:  ledger.MustPrice(2, 35), // 2/35 USD per MXN = 17.5 MXN/USD
		}})

	// The remittance: $0.50 → 8.75 MXN, limit price protects the sender.
	fmt.Println("\nsending $0.50 from the US to Mexico (PathPayment, §5.2):")
	destAmount, _ := ledger.ParseAmount("8.75")
	sendMax, _ := ledger.ParseAmount("0.51") // end-to-end limit price
	before := node.LastHeader().CloseTime
	submit("remittance USD→MXN", sender, senderKP,
		ledger.Operation{Body: &ledger.PathPayment{
			SendAsset: usd, SendMax: sendMax,
			Destination: recipient, DestAsset: mxn, DestAmount: destAmount,
		}})
	after := node.LastHeader().CloseTime

	fmt.Printf("\nresult:\n")
	fmt.Printf("  recipient MXN balance: %s\n", ledger.FormatAmount(node.State().BalanceOf(recipient, mxn)))
	fmt.Printf("  sender USD balance:    %s (spent ≤ $0.51 by the limit price)\n",
		ledger.FormatAmount(node.State().BalanceOf(sender, usd)))
	fmt.Printf("  settled in %d ledger close(s) ≈ %d seconds of network time\n", 1, after-before)
	fmt.Printf("  fee paid: %s XLM (≈ $0.000001 at paper prices)\n", ledger.FormatAmount(100))

	if err := sim.CheckAgreement(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("  all 4 validators agree on every ledger hash ✓")
}
