// Multisig escrow: the §5.2 land-deal scenario. "Suppose an issuer creates
// an asset to represent land deeds, and user A wants to exchange a small
// land parcel plus $10,000 for a bigger land parcel owned by B. The two
// users can both sign a single transaction containing three operations:
// two land payments and one dollar payment." The transaction is atomic —
// if any leg fails, none execute — and time bounds keep B from sitting on
// A's signature for a year.
package main

import (
	"fmt"
	"log"

	"stellar/internal/core"
	"stellar/internal/ledger"
	"stellar/internal/stellarcrypto"
)

func main() {
	networkID := core.HashBytes([]byte("escrow-example"))
	state, masterKP := core.GenesisState(networkID)
	master := ledger.AccountIDFromPublicKey(masterKP.Public)
	env := &ledger.ApplyEnv{LedgerSeq: 2, CloseTime: 1_700_000_000}

	registryKP := core.KeyPairFromString("land-registry")
	bankKP := core.KeyPairFromString("dollar-bank")
	aKP := core.KeyPairFromString("user-a")
	bKP := core.KeyPairFromString("user-b")
	registry := ledger.AccountIDFromPublicKey(registryKP.Public)
	bank := ledger.AccountIDFromPublicKey(bankKP.Public)
	a := ledger.AccountIDFromPublicKey(aKP.Public)
	b := ledger.AccountIDFromPublicKey(bKP.Public)

	mustApply := func(desc string, tx *ledger.Transaction) ledger.TxResult {
		res := state.ApplyTransaction(tx, networkID, env)
		if !res.Success {
			log.Fatalf("%s: %s %v", desc, res.Err, res.OpErrors)
		}
		fmt.Printf("  ✓ %s\n", desc)
		return res
	}
	simpleTx := func(source ledger.AccountID, kp stellarcrypto.KeyPair, ops ...ledger.Operation) *ledger.Transaction {
		tx := &ledger.Transaction{
			Source: source, SeqNum: state.Account(source).SeqNum + 1,
			Fee:        state.MinFee(&ledger.Transaction{Operations: ops}),
			Operations: ops,
		}
		tx.Sign(networkID, kp)
		return tx
	}

	fmt.Println("setup:")
	mustApply("fund accounts", simpleTx(master, masterKP,
		ledger.Operation{Body: &ledger.CreateAccount{Destination: registry, StartingBalance: 100 * core.One}},
		ledger.Operation{Body: &ledger.CreateAccount{Destination: bank, StartingBalance: 100 * core.One}},
		ledger.Operation{Body: &ledger.CreateAccount{Destination: a, StartingBalance: 100 * core.One}},
		ledger.Operation{Body: &ledger.CreateAccount{Destination: b, StartingBalance: 100 * core.One}},
	))

	// The land registry issues parcel tokens; the bank issues USD.
	smallParcel := ledger.MustAsset("PARCELS", registry)
	bigParcel := ledger.MustAsset("PARCELB", registry)
	usd := ledger.MustAsset("USD", bank)

	mustApply("A trusts assets", simpleTx(a, aKP,
		ledger.Operation{Body: &ledger.ChangeTrust{Asset: smallParcel, Limit: core.One}},
		ledger.Operation{Body: &ledger.ChangeTrust{Asset: bigParcel, Limit: core.One}},
		ledger.Operation{Body: &ledger.ChangeTrust{Asset: usd, Limit: 100_000 * core.One}},
	))
	mustApply("B trusts assets", simpleTx(b, bKP,
		ledger.Operation{Body: &ledger.ChangeTrust{Asset: smallParcel, Limit: core.One}},
		ledger.Operation{Body: &ledger.ChangeTrust{Asset: bigParcel, Limit: core.One}},
		ledger.Operation{Body: &ledger.ChangeTrust{Asset: usd, Limit: 100_000 * core.One}},
	))
	mustApply("registry deeds A the small parcel", simpleTx(registry, registryKP,
		ledger.Operation{Body: &ledger.Payment{Destination: a, Asset: smallParcel, Amount: core.One}}))
	mustApply("registry deeds B the big parcel", simpleTx(registry, registryKP,
		ledger.Operation{Body: &ledger.Payment{Destination: b, Asset: bigParcel, Amount: core.One}}))
	mustApply("bank funds A with $10,000", simpleTx(bank, bankKP,
		ledger.Operation{Body: &ledger.Payment{Destination: a, Asset: usd, Amount: 10_000 * core.One}}))

	// The deal: one transaction, three operations, two signers, and a
	// 3-day validity window (§5.2 time bounds).
	fmt.Println("\nthe land deal (single atomic transaction):")
	deal := &ledger.Transaction{
		Source: a,
		SeqNum: state.Account(a).SeqNum + 1,
		Fee:    3 * ledger.DefaultBaseFee,
		TimeBounds: &ledger.TimeBounds{
			MaxTime: env.CloseTime + 3*24*3600, // A won't wait forever
		},
		Operations: []ledger.Operation{
			{Source: a, Body: &ledger.Payment{Destination: b, Asset: smallParcel, Amount: core.One}},
			{Source: a, Body: &ledger.Payment{Destination: b, Asset: usd, Amount: 10_000 * core.One}},
			{Source: b, Body: &ledger.Payment{Destination: a, Asset: bigParcel, Amount: core.One}},
		},
	}
	deal.Sign(networkID, aKP)

	// With only A's signature, B's operation is unauthorized: rejected.
	if res := state.ApplyTransaction(deal, networkID, env); res.Err == "" {
		log.Fatal("deal executed without B's signature!")
	}
	fmt.Println("  ✓ rejected with only A's signature (B's op needs B's key)")

	deal.Sign(networkID, bKP)
	mustApply("executed with both signatures", deal)

	fmt.Println("\nfinal holdings:")
	fmt.Printf("  A: big parcel %s, USD %s\n",
		core.FormatAmount(state.BalanceOf(a, bigParcel)), core.FormatAmount(state.BalanceOf(a, usd)))
	fmt.Printf("  B: small parcel %s, USD %s\n",
		core.FormatAmount(state.BalanceOf(b, smallParcel)), core.FormatAmount(state.BalanceOf(b, usd)))

	// Atomicity under failure: if B no longer held the big parcel, the
	// whole deal would roll back — including A's two payments.
	fmt.Println("\natomicity check (replay after assets moved):")
	deal2 := &ledger.Transaction{
		Source: a, SeqNum: state.Account(a).SeqNum + 1, Fee: 3 * ledger.DefaultBaseFee,
		Operations: deal.Operations,
	}
	deal2.Sign(networkID, aKP)
	deal2.Sign(networkID, bKP)
	res := state.ApplyTransaction(deal2, networkID, env)
	if res.Success {
		log.Fatal("replayed deal succeeded?!")
	}
	fmt.Printf("  ✓ failed as a unit (%d op error(s)); no partial transfers: A USD still %s\n",
		len(res.OpErrors), core.FormatAmount(state.BalanceOf(a, usd)))
}
