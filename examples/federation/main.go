// Federation: a five-organization SCP network shaped like the paper's
// production topology (§7.2, Figure 6/7). Each organization runs three
// validators; quorum sets are synthesized with the §6.1 quality-tier
// mechanism. The example shows the network reaching consensus, verifies
// quorum intersection with the §6.2 checker, then knocks an entire
// organization offline and shows liveness continuing — the federated
// model's point: no single org is a gatekeeper.
package main

import (
	"fmt"
	"log"
	"time"

	"stellar/internal/experiments"
	"stellar/internal/fba"
	"stellar/internal/qconfig"
	"stellar/internal/quorum"
	"stellar/internal/simnet"
)

func main() {
	const orgs, perOrg = 5, 3
	names := []string{"sdf", "satoshipay", "lobstr", "coinqvest", "keybase"}

	// Build the §6.1 quality-tier configuration and synthesize quorum
	// sets. The validator IDs are assigned after key generation, so the
	// synthesized template is rebuilt per node using their real IDs.
	fmt.Println("five organizations, three validators each (Figure 6 tiers):")
	qsetFor := func(i int, all []fba.NodeID) fba.QuorumSet {
		cfg := qconfig.Config{}
		for o := 0; o < orgs; o++ {
			cfg.Orgs = append(cfg.Orgs, qconfig.Organization{
				Name:       names[o],
				Quality:    qconfig.High,
				Validators: all[o*perOrg : (o+1)*perOrg],
			})
		}
		qs, err := cfg.Synthesize()
		if err != nil {
			log.Fatal(err)
		}
		return qs
	}

	sim, err := experiments.Build(experiments.Options{
		Validators: orgs * perOrg,
		Accounts:   500,
		TxRate:     20,
		QSetFor:    qsetFor,
	})
	if err != nil {
		log.Fatal(err)
	}

	// Before running: prove the collective configuration is safe (§6.2).
	qsets := make(fba.QuorumSets)
	for _, n := range sim.Nodes {
		q := n.SCP().LocalQuorumSet()
		qsets[n.ID()] = &q
	}
	res := quorum.CheckIntersection(qsets)
	fmt.Printf("quorum intersection check: %s\n", res)
	if !res.Intersects {
		log.Fatal("configuration admits disjoint quorums")
	}
	crit := quorum.CheckCriticality(qsets, orgsOf(sim, names, perOrg))
	fmt.Printf("criticality check: %d organizations critical\n\n", len(crit.Critical))

	sim.Start()
	fmt.Println("running 30 seconds of network time:")
	sim.Run(30 * time.Second)
	report(sim)

	// Knock out one whole organization (3 of 15 validators).
	fmt.Printf("\ncrashing all of %q (3 validators)...\n", names[4])
	for _, n := range sim.Nodes[12:15] {
		sim.Net.SetDown(simnet.Addr(n.ID()))
	}
	sim.Run(30 * time.Second)
	report(sim)

	// And bring it back: the stragglers catch up via the cascade.
	fmt.Printf("\nreviving %q; anti-entropy brings it back:\n", names[4])
	for _, n := range sim.Nodes[12:15] {
		sim.Net.SetUp(simnet.Addr(n.ID()))
	}
	for i := 0; i < 10; i++ {
		sim.Run(3 * time.Second)
		for _, n := range sim.Nodes {
			n.RebroadcastLatest()
		}
	}
	report(sim)

	if err := sim.CheckAgreement(); err != nil {
		log.Fatalf("SAFETY VIOLATION: %v", err)
	}
	fmt.Println("\nevery validator agrees on every ledger hash ✓")
}

func report(sim *experiments.SimNetwork) {
	lo, hi := ^uint32(0), uint32(0)
	for _, n := range sim.Nodes {
		seq := n.LastHeader().LedgerSeq
		if seq < lo {
			lo = seq
		}
		if seq > hi {
			hi = seq
		}
	}
	m := sim.MergedMetrics()
	fmt.Printf("  ledgers closed: min %d, max %d across validators; close interval mean %.2fs; %.1f tx/ledger\n",
		lo, hi, m.CloseInterval.Mean().Seconds(), m.TxPerLedger.Mean())
}

func orgsOf(sim *experiments.SimNetwork, names []string, perOrg int) []quorum.Org {
	var out []quorum.Org
	for o := range names {
		var vs []fba.NodeID
		for _, n := range sim.Nodes[o*perOrg : (o+1)*perOrg] {
			vs = append(vs, n.ID())
		}
		out = append(out, quorum.Org{Name: names[o], Validators: vs})
	}
	return out
}
