// Command stellar-chaos runs fault-injection scenarios against the
// simulated Stellar network and verifies the consensus invariants the
// paper claims (§3.1): safety for intact nodes under arbitrary faults,
// and liveness recovery once the network heals. Every run is
// deterministic for its seed; a failing scenario prints the seed and a
// replay command, which this binary also serves as.
//
// Usage:
//
//	stellar-chaos -scenarios 20                        # random sweep
//	stellar-chaos -scenario partition-heal -seed 7     # the named scenario
//	stellar-chaos -seed 123456                         # replay one random scenario
package main

import (
	"flag"
	"fmt"
	"log/slog"
	"os"
	"path/filepath"

	"stellar/internal/chaos"
	"stellar/internal/obs"
)

func main() {
	scenario := flag.String("scenario", "", "named scenario to run: partition-heal, kill-wipe-rejoin, kill-restore-rejoin (default: randomized)")
	seed := flag.Int64("seed", 0, "seed for a single scenario (0: run -scenarios random seeds)")
	scenarios := flag.Int("scenarios", 10, "number of random scenarios when no -seed is given")
	firstSeed := flag.Int64("first-seed", 1, "first seed of the random sweep")
	metrics := flag.Bool("metrics", false, "dump the chaos metric registry after the run")
	phases := flag.Bool("phases", false, "trace each scenario and print its per-phase latency table")
	verbose := flag.Bool("v", false, "structured scenario logging to stderr")
	flag.Parse()

	ob := obs.New()
	if *verbose {
		ob.Log = obs.NewLogger(os.Stderr, slog.LevelInfo)
	}

	build := func(s int64) chaos.Scenario {
		var sc chaos.Scenario
		switch *scenario {
		case "partition-heal":
			sc = chaos.PartitionHealScenario(s)
		case "kill-wipe-rejoin", "kill-restore-rejoin":
			base, err := os.MkdirTemp("", "stellar-chaos-archives-")
			if err != nil {
				fmt.Fprintf(os.Stderr, "error: %v\n", err)
				os.Exit(1)
			}
			sc = chaos.KillWipeRejoinScenario(s, *scenario == "kill-wipe-rejoin",
				func(i int) string { return filepath.Join(base, fmt.Sprintf("node-%d", i)) })
		case "":
			sc = chaos.Generate(s)
		default:
			fmt.Fprintf(os.Stderr, "unknown scenario %q (have: partition-heal, kill-wipe-rejoin, kill-restore-rejoin)\n", *scenario)
			os.Exit(2)
			panic("unreachable")
		}
		sc.Trace = *phases
		return sc
	}

	seeds := make([]int64, 0, *scenarios)
	if *seed != 0 {
		seeds = append(seeds, *seed)
	} else {
		for s := *firstSeed; s < *firstSeed+int64(*scenarios); s++ {
			seeds = append(seeds, s)
		}
	}

	failures := 0
	for _, s := range seeds {
		rep, err := chaos.Run(build(s), ob)
		if err != nil {
			failures++
			fmt.Fprintf(os.Stderr, "FAIL: %v\n", err)
			continue
		}
		fmt.Println(rep)
		if rep.Phases != nil {
			_ = rep.Phases.WriteTable(os.Stdout)
			fmt.Println()
		}
	}

	if *metrics {
		fmt.Println()
		if err := ob.Reg.WritePrometheus(os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "error: %v\n", err)
		}
	}

	if failures > 0 {
		fmt.Fprintf(os.Stderr, "\n%d of %d scenarios failed\n", failures, len(seeds))
		os.Exit(1)
	}
	fmt.Printf("all %d scenarios passed\n", len(seeds))
}
