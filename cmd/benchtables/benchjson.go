package main

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"stellar/internal/obs/collect"
)

// runBenchJSON parses `go test -bench` output (read from r, normally a
// pipe from the bench make target) into a schema-versioned
// stellar-bench/v1 micro report, so the microbenchmark numbers land in
// the same published BENCH_*.json artifact family as the cluster run.
func runBenchJSON(r io.Reader, path string) error {
	rows, err := collect.ParseGoBench(r)
	if err != nil {
		return err
	}
	if len(rows) == 0 {
		return fmt.Errorf("bench-json: no Benchmark result lines on stdin")
	}
	report := &collect.BenchReport{Kind: "micro", GeneratedUnix: time.Now().Unix(), Micro: rows}
	w := os.Stdout
	if path != "-" {
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	if err := collect.WriteBench(w, report); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "bench-json: %d benchmark rows → %s\n", len(rows), path)
	return nil
}

// echoBench copies bench output through while buffering it, so the make
// target still shows the familiar `go test -bench` lines on the console.
func echoBench(r io.Reader) io.Reader {
	var b strings.Builder
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		fmt.Println(sc.Text())
		b.WriteString(sc.Text())
		b.WriteByte('\n')
	}
	return strings.NewReader(b.String())
}
