// Command benchtables regenerates every table and figure of the paper's
// evaluation (§7) plus the §6.2 checker measurements, printing the same
// rows and series the paper reports. See DESIGN.md's experiment index.
//
// Usage:
//
//	benchtables -table=all            # everything (slow)
//	benchtables -table=fig9 -full     # one figure at paper scale
//	benchtables -list                 # enumerate tables
//
// With -bench-json it instead converts `go test -bench` output piped on
// stdin into a schema-versioned BENCH_micro.json:
//
//	go test -run '^$' -bench . -benchtime 1x . | benchtables -bench-json BENCH_micro.json
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"stellar/internal/experiments"
)

var tables = []struct {
	name string
	desc string
	run  func(full bool) error
}{
	{"messages", "E1 / §7.2: SCP messages per ledger", runMessages},
	{"fig8", "E2 / Figure 8: timeouts per ledger percentiles", runFig8},
	{"fig9", "E3 / Figure 9: latency vs number of accounts", runFig9},
	{"fig10", "E4 / Figure 10: latency vs transaction load", runFig10},
	{"fig11", "E5 / Figure 11: latency vs number of validators", runFig11},
	{"baseline", "E6 / §7.3: baseline experiment", runBaseline},
	{"closerate", "E7 / §7.3: ledger close rate under sweeps", runCloseRate},
	{"cost", "E8 / §7.4: cost of running a validator", runCost},
	{"qi", "E9 / §6.2.1: quorum intersection checker scaling", runQI},
	{"critical", "E10 / §6.2.2: criticality detection", runQI},
	{"baselinebft", "E11: SCP vs closed-membership PBFT baseline", runBFT},
	{"ablation", "DESIGN §4: ballot timeout policy ablation", runAblation},
	{"overlay", "§7.5 future work: flooding vs structured multicast", runOverlay},
}

func main() {
	table := flag.String("table", "all", "table to regenerate (see -list)")
	full := flag.Bool("full", false, "paper-scale sweeps (slow); default is a faithful reduced scale")
	list := flag.Bool("list", false, "list available tables")
	benchJSON := flag.String("bench-json", "",
		"parse `go test -bench` output from stdin into a stellar-bench/v1 micro report at this path (- = stdout)")
	flag.Parse()

	if *benchJSON != "" {
		if err := runBenchJSON(echoBench(os.Stdin), *benchJSON); err != nil {
			fmt.Fprintf(os.Stderr, "error: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if *list {
		for _, t := range tables {
			fmt.Printf("  %-12s %s\n", t.name, t.desc)
		}
		return
	}
	ran := false
	for _, t := range tables {
		if *table != "all" && t.name != *table {
			continue
		}
		if t.name == "critical" && *table == "all" {
			continue // qi prints both
		}
		ran = true
		fmt.Printf("\n=== %s — %s ===\n", t.name, t.desc)
		start := time.Now()
		if err := t.run(*full); err != nil {
			fmt.Fprintf(os.Stderr, "error: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("(regenerated in %v)\n", time.Since(start).Round(time.Millisecond))
	}
	if !ran {
		fmt.Fprintf(os.Stderr, "unknown table %q; use -list\n", *table)
		os.Exit(2)
	}
}

func ms(d time.Duration) float64 { return float64(d.Microseconds()) / 1000 }

func printLatencyRows(rows []experiments.LatencyRow) {
	fmt.Printf("%-18s %12s %12s %14s %10s %10s\n",
		"setting", "nominate(ms)", "ballot(ms)", "ledgerupd(ms)", "close(s)", "tx/ledger")
	for _, r := range rows {
		fmt.Printf("%-18s %12.2f %12.2f %14.3f %10.2f %10.1f\n",
			r.Label, ms(r.Nomination), ms(r.Balloting), ms(r.LedgerUpdate),
			r.CloseMean.Seconds(), r.TxPerLedger)
	}
}

func runMessages(full bool) error {
	ledgers := 20
	if full {
		ledgers = 100
	}
	res, err := experiments.RunMessagesPerLedger(ledgers)
	if err != nil {
		return err
	}
	fmt.Printf("paper (§7.2): ~7 logical messages per ledger, 6-7 observed\n")
	fmt.Printf("measured:     mean %.1f msgs/ledger, max %d, over %d ledger-samples\n",
		res.MeanPerLedger, res.MaxPerLedger, res.Ledgers)
	return nil
}

func runFig8(full bool) error {
	ledgers := 40
	if full {
		ledgers = 400
	}
	res, err := experiments.RunTimeoutProfile(ledgers)
	if err != nil {
		return err
	}
	fmt.Printf("paper (Fig 8, 68h production): nomination p75=0 p99=1 max=4; balloting p75=0 p99=0 max=1\n")
	fmt.Printf("%-12s %6s %6s %6s\n", "percentile", "p75", "p99", "max")
	fmt.Printf("%-12s %6d %6d %6d\n", "nomination", res.Nomination75, res.Nomination99, res.NominationMax)
	fmt.Printf("%-12s %6d %6d %6d\n", "balloting", res.Balloting75, res.Balloting99, res.BallotingMax)
	fmt.Printf("(%d ledger-samples over degraded links)\n", res.Ledgers)
	return nil
}

func runFig9(full bool) error {
	counts := []int{1_000, 10_000, 100_000}
	ledgers := 8
	if full {
		counts = []int{100_000, 1_000_000, 5_000_000}
		ledgers = 20
	}
	fmt.Println("paper (Fig 9): latency roughly flat from 10^5 to 5·10^7 accounts;")
	fmt.Println("ledger update dominated by bucket merging as accounts grow")
	rows, err := experiments.RunAccountsSweep(counts, ledgers)
	if err != nil {
		return err
	}
	printLatencyRows(rows)
	return nil
}

func runFig10(full bool) error {
	rates := []float64{100, 200, 300}
	accounts := 20_000
	ledgers := 8
	if full {
		rates = []float64{100, 150, 200, 250, 300, 350}
		accounts = 100_000
		ledgers = 20
	}
	fmt.Println("paper (Fig 10): consensus grows slowly; ledger update grows with tx/ledger")
	rows, err := experiments.RunLoadSweep(rates, accounts, ledgers)
	if err != nil {
		return err
	}
	printLatencyRows(rows)
	return nil
}

func runFig11(full bool) error {
	counts := []int{4, 10, 19}
	accounts := 5_000
	ledgers := 6
	if full {
		counts = []int{4, 10, 19, 28, 36, 43}
		accounts = 100_000
		ledgers = 15
	}
	fmt.Println("paper (Fig 11): nomination grows slowly; balloting dominates with more validators;")
	fmt.Println("ledger update independent of node count")
	rows, err := experiments.RunValidatorsSweep(counts, accounts, ledgers)
	if err != nil {
		return err
	}
	printLatencyRows(rows)
	return nil
}

func runBaseline(full bool) error {
	accounts := 20_000
	ledgers := 10
	if full {
		accounts = 100_000
		ledgers = 40
	}
	res, err := experiments.RunBaseline(accounts, ledgers)
	if err != nil {
		return err
	}
	fmt.Println("paper (§7.3): 507 ± 49 tx/ledger; nomination 82.53ms, balloting 95.96ms,")
	fmt.Println("ledger update 174.08ms; no transactions dropped")
	fmt.Printf("measured: %.0f ± %.0f tx/ledger over %d ledgers\n",
		res.TxPerLedgerMean, res.TxPerLedgerStdev, res.Row.Ledgers)
	fmt.Printf("          nomination %.2fms (p99 %.2fms), balloting %.2fms (p99 %.2fms),\n",
		ms(res.Row.Nomination), ms(res.Nomination99), ms(res.Row.Balloting), ms(res.Balloting99))
	fmt.Printf("          ledger update %.3fms (p99 %.3fms), close %.2fs\n",
		ms(res.Row.LedgerUpdate), ms(res.LedgerUpdate99), res.Row.CloseMean.Seconds())
	return nil
}

func runCloseRate(full bool) error {
	ledgers := 8
	if full {
		ledgers = 25
	}
	fmt.Println("paper (§7.3): average close times 5.03s, 5.10s, 5.15s across the three sweeps")
	type sweep struct {
		name string
		run  func() ([]experiments.LatencyRow, error)
	}
	sweeps := []sweep{
		{"accounts sweep", func() ([]experiments.LatencyRow, error) {
			return experiments.RunAccountsSweep([]int{1_000, 50_000}, ledgers)
		}},
		{"tx-rate sweep", func() ([]experiments.LatencyRow, error) {
			return experiments.RunLoadSweep([]float64{100, 300}, 10_000, ledgers)
		}},
		{"validators sweep", func() ([]experiments.LatencyRow, error) {
			return experiments.RunValidatorsSweep([]int{4, 16}, 2_000, ledgers)
		}},
	}
	for _, s := range sweeps {
		rows, err := s.run()
		if err != nil {
			return err
		}
		var worst time.Duration
		for _, r := range rows {
			if r.CloseMean > worst {
				worst = r.CloseMean
			}
		}
		fmt.Printf("%-18s worst mean close interval %.2fs\n", s.name, worst.Seconds())
	}
	return nil
}

func runCost(full bool) error {
	validators, accounts, ledgers := 10, 10_000, 10
	if full {
		validators, accounts, ledgers = 34, 100_000, 30
	}
	res, err := experiments.RunValidatorCost(validators, accounts, ledgers)
	if err != nil {
		return err
	}
	fmt.Println("paper (§7.4): ~7% CPU, 300MiB RSS, 2.78/2.56 Mbit/s in/out on a c5.large")
	fmt.Printf("measured: heap %.1f MiB/validator; bandwidth in %.2f Mbit/s, out %.2f Mbit/s (%d ledgers)\n",
		res.HeapMiB, res.InboundMbitSec, res.OutboundMbitSec, res.Ledgers)
	return nil
}

func runQI(full bool) error {
	orgs := []int{3, 5, 7, 8}
	if full {
		orgs = []int{3, 5, 7, 9, 10, 11}
	}
	fmt.Println("paper (§6.2.1): 20-30 node transitive closures check in seconds on one CPU")
	rows, err := experiments.RunQuorumCheck(orgs)
	if err != nil {
		return err
	}
	fmt.Printf("%6s %6s %11s %10s %10s %9s\n", "orgs", "nodes", "intersects", "examined", "elapsed", "critical")
	for _, r := range rows {
		fmt.Printf("%6d %6d %11v %10d %10s %9d\n",
			r.Orgs, r.Nodes, r.Intersects, r.Examined, r.Elapsed.Round(time.Millisecond), r.Critical)
	}
	return nil
}

func runBFT(full bool) error {
	sizes := []int{4, 7}
	if full {
		sizes = []int{4, 7, 10, 16, 19}
	}
	fmt.Println("context (§2.1): SCP trades extra messages for open membership vs closed BFT")
	rows, err := experiments.RunSCPvsPBFT(sizes)
	if err != nil {
		return err
	}
	fmt.Printf("%4s %14s %10s %14s %10s\n", "N", "SCP lat(ms)", "SCP msgs", "PBFT lat(ms)", "PBFT msgs")
	for _, r := range rows {
		fmt.Printf("%4d %14.1f %10d %14.1f %10d\n",
			r.N, ms(r.SCPLatency), r.SCPMsgs, ms(r.PBFTLatency), r.PBFTMsgs)
	}
	return nil
}

func runOverlay(full bool) error {
	validators, ledgers := 10, 8
	if full {
		validators, ledgers = 25, 20
	}
	rows, err := experiments.RunOverlayComparison(validators, ledgers)
	if err != nil {
		return err
	}
	fmt.Println("paper (§7.5): flooding \"should ideally use more efficient, structured")
	fmt.Println("peer-to-peer multicast\"; implemented here as the future-work extension")
	fmt.Printf("%-30s %16s %16s %10s\n", "strategy", "msgs/ledger", "KiB/ledger", "close(s)")
	for _, r := range rows {
		fmt.Printf("%-30s %16.0f %16.1f %10.2f\n",
			r.Strategy, r.MsgsPerLedger, r.BytesPerLedger/1024, r.CloseMean.Seconds())
	}
	return nil
}

func runAblation(full bool) error {
	ledgers := 10
	if full {
		ledgers = 40
	}
	rows, err := experiments.RunTimeoutPolicyAblation(ledgers)
	if err != nil {
		return err
	}
	fmt.Println("ablation: ballot timeout growth policy on a laggy network (DESIGN §4)")
	fmt.Printf("%-20s %12s %18s\n", "policy", "close mean", "timeouts/ledger")
	for _, r := range rows {
		fmt.Printf("%-20s %12.2fs %18.2f\n", r.Policy, r.CloseMean.Seconds(), r.Timeouts)
	}
	return nil
}
