// Command stellar-sim runs a simulated Stellar network — full validators
// (SCP + ledger + overlay) on the discrete-event simulator — and prints
// per-ledger statistics, the equivalent of watching a small private
// network of stellar-core nodes close ledgers.
//
// Usage:
//
//	stellar-sim -validators 4 -accounts 10000 -rate 100 -duration 60s
package main

import (
	"flag"
	"fmt"
	"log/slog"
	"os"
	"time"

	"stellar/internal/cliutil"
	"stellar/internal/experiments"
	"stellar/internal/obs"
)

func main() {
	validators := flag.Int("validators", 4, "number of validator nodes")
	accounts := flag.Int("accounts", 10_000, "synthetic accounts in the ledger")
	rate := flag.Float64("rate", 100, "offered load, transactions per second")
	duration := flag.Duration("duration", 60*time.Second, "virtual time to simulate")
	interval := flag.Duration("interval", 5*time.Second, "target ledger interval")
	dropRate := flag.Float64("drop", 0, "message drop probability [0,1)")
	seed := flag.Int64("seed", 42, "deterministic simulation seed")
	archive := flag.String("archive", "", "directory for a history archive (optional)")
	decompose := flag.Bool("decompose", false, "print the per-phase latency decomposition table")
	verbose := flag.Bool("v", false, "structured per-node logging to stderr")
	var common cliutil.CommonFlags
	common.Register(flag.CommandLine)
	flag.Parse()

	opts := experiments.Options{
		Validators:      *validators,
		Accounts:        *accounts,
		TxRate:          *rate,
		LedgerInterval:  *interval,
		DropRate:        *dropRate,
		Seed:            *seed,
		ArchiveDir:      *archive,
		VerifyWorkers:   common.VerifyWorkers,
		VerifyCacheSize: common.VerifyCache,
		ApplyWorkers:    common.ApplyWorkers,
		ApplyCheck:      common.ApplyCheck,
		Trace:           common.Tracing() || *decompose,
	}
	if *verbose {
		root := obs.NewLogger(os.Stderr, slog.LevelDebug)
		opts.Obs = func(i int) *obs.Obs {
			return &obs.Obs{Log: root.With(slog.Int("node", i))}
		}
	}
	fmt.Printf("building network: %d validators, %d accounts, %.0f tx/s, %v ledgers\n",
		*validators, *accounts, *rate, *interval)
	s, err := experiments.Build(opts)
	if err != nil {
		fmt.Fprintf(os.Stderr, "error: %v\n", err)
		os.Exit(1)
	}

	// Report progress from the first validator's perspective.
	node := s.Nodes[0]
	lastSeq := node.LastHeader().LedgerSeq

	s.Start()
	ticks := int(*duration / *interval)
	for i := 0; i < ticks; i++ {
		s.Run(*interval)
		h := node.LastHeader()
		if h.LedgerSeq == lastSeq {
			continue
		}
		lastSeq = h.LedgerSeq
		m := node.Metrics
		fmt.Printf("ledger %4d  t=%-8v  tx/ledger=%4.0f  nominate=%6.1fms  ballot=%6.1fms  apply=%6.2fms  pending=%d\n",
			h.LedgerSeq, s.Net.Now().Truncate(time.Millisecond),
			m.TxPerLedger.Mean(),
			float64(m.Nomination.Mean().Microseconds())/1000,
			float64(m.Balloting.Mean().Microseconds())/1000,
			float64(m.LedgerUpdate.Mean().Microseconds())/1000,
			node.PendingCount())
	}
	s.Stop()

	if err := s.CheckAgreement(); err != nil {
		fmt.Fprintf(os.Stderr, "SAFETY VIOLATION: %v\n", err)
		os.Exit(1)
	}
	m := s.MergedMetrics()
	fmt.Printf("\nsummary over %d ledger-samples (all validators):\n", m.CloseInterval.N())
	fmt.Printf("  close interval: mean %.2fs  p99 %.2fs\n",
		m.CloseInterval.Mean().Seconds(), m.CloseInterval.Percentile(99).Seconds())
	fmt.Printf("  nomination:     mean %v  p99 %v\n", m.Nomination.Mean(), m.Nomination.Percentile(99))
	fmt.Printf("  balloting:      mean %v  p99 %v\n", m.Balloting.Mean(), m.Balloting.Percentile(99))
	fmt.Printf("  ledger update:  mean %v  p99 %v\n", m.LedgerUpdate.Mean(), m.LedgerUpdate.Percentile(99))
	fmt.Printf("  tx per ledger:  mean %.1f  max %d\n", m.TxPerLedger.Mean(), m.TxPerLedger.Max())
	fmt.Printf("  msgs per ledger per validator: mean %.1f\n", m.MessagesEmitted.Mean())
	vs := node.Verifier().Cache.Stats()
	ps := node.Verifier().Pool.Stats()
	fmt.Printf("  verify cache (validator 0): hits %d  misses %d  hit rate %.1f%%  (%d workers)\n",
		vs.Hits, vs.Misses, 100*vs.HitRate(), ps.Workers)
	fmt.Printf("  agreement: all %d validators consistent at every ledger\n", len(s.Nodes))

	if *decompose {
		d := s.Tracer.Decompose()
		fmt.Printf("\nlatency decomposition (%d spans", d.Spans())
		if n := s.Tracer.Dropped(); n > 0 {
			fmt.Printf(", %d dropped at the span cap", n)
		}
		fmt.Println("):")
		_ = d.WriteTable(os.Stdout)
	}
	if common.Tracing() {
		if err := common.WriteTrace(s.Tracer); err != nil {
			fmt.Fprintf(os.Stderr, "error: %v\n", err)
			os.Exit(1)
		}
	}
}
