// Command stellar-node runs ONE validator as an OS process, speaking the
// authenticated TCP overlay (internal/transport) to its peers — where
// stellar-sim and horizon-demo simulate a whole network in-process, N
// stellar-node processes form a real quorum:
//
//	stellar-node -seed node-0 -listen :11625 -peers localhost:11626,localhost:11627 -horizon :8000
//	stellar-node -seed node-1 -listen :11626 -peers localhost:11625,localhost:11627 -metrics :9001
//	stellar-node -seed node-2 -listen :11627 -peers localhost:11625,localhost:11626 -metrics :9002
//
// Identities are derived from seed labels so every process computes the
// same quorum set and genesis state with no coordination; -quorum lists
// the labels of all validators (majority threshold). The demo master
// account ("demo-master" seed label) exists at genesis for transaction
// submission through horizon, exactly as in horizon-demo.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"stellar/internal/cliutil"
	"stellar/internal/fba"
	"stellar/internal/herder"
	"stellar/internal/history"
	"stellar/internal/horizon"
	"stellar/internal/ledger"
	"stellar/internal/obs"
	"stellar/internal/simnet"
	"stellar/internal/stellarcrypto"
	"stellar/internal/transport"
)

func main() {
	listen := flag.String("listen", ":11625", "TCP overlay listen address")
	peersFlag := flag.String("peers", "", "comma-separated peer overlay addresses (host:port) to dial")
	seed := flag.String("seed", "node-0", "identity seed label of this validator (must appear in -quorum)")
	quorumFlag := flag.String("quorum", "node-0,node-1,node-2", "comma-separated identity seed labels of all validators (majority quorum)")
	horizonAddr := flag.String("horizon", "", "HTTP listen address for the full horizon API (empty = disabled)")
	metricsAddr := flag.String("metrics", "", "HTTP listen address for metrics and debug endpoints (empty = disabled)")
	interval := flag.Duration("interval", 5*time.Second, "target ledger interval")
	network := flag.String("network", "stellar-node-network", "network passphrase; nodes on different passphrases reject each other at handshake")
	drift := flag.Duration("max-drift", 0, "close-time clock tolerance (0 = 10s); widen when -interval is sub-second")
	queueSize := flag.Int("queue", 0, "per-peer outbound frame queue, oldest shed when full (0 = 512)")
	verbose := flag.Bool("v", false, "structured node and transport logging to stderr")
	var common cliutil.CommonFlags
	common.Register(flag.CommandLine)
	var ingress cliutil.IngressFlags
	ingress.Register(flag.CommandLine)
	var alerts cliutil.AlertFlags
	alerts.Register(flag.CommandLine)
	var dur cliutil.DurabilityFlags
	dur.Register(flag.CommandLine)
	flag.Parse()

	if err := run(*listen, *peersFlag, *seed, *quorumFlag, *horizonAddr, *metricsAddr,
		*network, *interval, *drift, *queueSize, *verbose, &common, &ingress, &alerts, &dur); err != nil {
		fmt.Fprintf(os.Stderr, "error: %v\n", err)
		os.Exit(1)
	}
}

func run(listen, peersFlag, seed, quorumFlag, horizonAddr, metricsAddr, network string,
	interval, drift time.Duration, queueSize int, verbose bool,
	common *cliutil.CommonFlags, ingress *cliutil.IngressFlags, alerts *cliutil.AlertFlags,
	dur *cliutil.DurabilityFlags) error {

	labels := strings.Split(quorumFlag, ",")
	ids := make([]fba.NodeID, 0, len(labels))
	self := -1
	for i, label := range labels {
		label = strings.TrimSpace(label)
		if label == "" {
			return errors.New("-quorum has an empty label")
		}
		labels[i] = label
		kp := stellarcrypto.KeyPairFromString(label)
		ids = append(ids, fba.NodeIDFromPublicKey(kp.Public))
		if label == seed {
			self = i
		}
	}
	if self < 0 {
		return fmt.Errorf("-seed %q is not among the -quorum labels %v", seed, labels)
	}
	keys := stellarcrypto.KeyPairFromString(seed)
	qset := fba.Majority(ids...)
	networkID := stellarcrypto.HashBytes([]byte(network))

	ob := &obs.Obs{}
	if verbose {
		ob.Log = obs.NewLogger(os.Stderr, slog.LevelDebug).With(slog.String("node", seed))
	}
	var tracer *obs.Tracer
	if common.Tracing() {
		tracer = obs.NewTracer(nil) // wall clock
		// Namespace span ids by this validator's public key so traces
		// exported from independent processes merge without collisions.
		tracer.SetIDBase(obs.IDBaseFromString(keys.Public.Address()))
		tracer.SetLimit(common.TraceLimit)
		ob.Tracer = tracer
	}

	// Every process derives the identical genesis ledger (plus the
	// demo-master account for horizon transaction submission), so the
	// chain of header hashes matches across the quorum from seq 1.
	genesis, masterKP := herder.GenesisState(networkID)
	demoKP := stellarcrypto.KeyPairFromString("demo-master")
	demo := ledger.AccountIDFromPublicKey(demoKP.Public)
	master := ledger.AccountIDFromPublicKey(masterKP.Public)
	op := &ledger.CreateAccount{Destination: demo, StartingBalance: 1_000_000 * ledger.One}
	if err := op.Apply(genesis, &ledger.ApplyEnv{LedgerSeq: 1}, master); err != nil {
		return err
	}

	arch, err := dur.Open()
	if err != nil {
		return err
	}

	loop := transport.NewLoop()
	node, err := herder.New(loop, herder.Config{
		Keys:                keys,
		QSet:                qset,
		NetworkID:           networkID,
		LedgerInterval:      interval,
		MaxCloseTimeDrift:   drift,
		VerifyWorkers:       common.VerifyWorkers,
		VerifyCacheSize:     common.VerifyCache,
		ApplyWorkers:        common.ApplyWorkers,
		ApplyCheck:          common.ApplyCheck,
		MempoolMaxTxs:       ingress.MempoolMax,
		MempoolMaxPerSource: ingress.MempoolPerSource,
		Archive:             arch,
		CheckpointInterval:  dur.CheckpointInterval,
		BucketSpillLevel:    dur.SpillLevel,
		Obs:                 ob,
	})
	if err != nil {
		return err
	}
	obs.RegisterRuntimeMetrics(node.Obs().Reg)
	obs.RegisterTracerMetrics(node.Obs().Reg, tracer)

	var peers []string
	if peersFlag != "" {
		for _, p := range strings.Split(peersFlag, ",") {
			if p = strings.TrimSpace(p); p != "" {
				peers = append(peers, p)
			}
		}
	}
	// Boot policy (DESIGN.md §16): a data dir holding a checkpoint restores
	// and replays to its archived tip before the overlay opens; an empty
	// data dir with -catchup fetches a peer's archive over the wire once the
	// first peer is up; otherwise every process derives the shared genesis.
	var startCatchup func()
	switch {
	case arch != nil && hasCheckpoint(arch):
		var replayed int
		var rerr error
		loop.Run(func() {
			if replayed, rerr = node.RestoreFromArchive(arch); rerr == nil {
				node.Start()
			}
		})
		if rerr != nil {
			return fmt.Errorf("restoring from %s: %w", dur.DataDir, rerr)
		}
		fmt.Printf("restored from %s at ledger %d (%d replayed past the checkpoint)\n",
			dur.DataDir, node.LastHeader().LedgerSeq, replayed)
	case dur.Catchup:
		if len(peers) == 0 {
			return errors.New("-catchup needs at least one -peers address")
		}
		// Deferred to the first OnPeerUp loop event: discovery needs a
		// live peer. OnPeerUp events are serialized on the loop, so the
		// one-shot reset below is race-free.
		startCatchup = func() {
			if err := node.StartNetworkCatchup(nil); err != nil {
				fmt.Fprintf(os.Stderr, "catchup: %v\n", err)
			}
		}
		fmt.Printf("empty archive at %s; waiting for a peer to catch up from\n", dur.DataDir)
	default:
		loop.Run(func() {
			node.Bootstrap(genesis, 0)
			node.Start()
		})
	}

	mgr, err := transport.NewManager(loop, transport.Config{
		ListenAddr: listen,
		Peers:      peers,
		Keys:       keys,
		NetworkID:  networkID,
		QueueSize:  queueSize,
		Obs:        node.Obs(),
		OnPeerUp: func(p simnet.Addr) {
			node.Overlay().AddPeer(p)
			node.RebroadcastLatest()
			if startCatchup != nil {
				startCatchup()
				startCatchup = nil
			}
		},
		OnPeerDown: func(p simnet.Addr) {
			node.Overlay().RemovePeer(p)
		},
	})
	if err != nil {
		return err
	}

	// Horizon (full API) and the metrics endpoint serve the same handler:
	// the metrics address is the lightweight alternative when no client
	// API is wanted, exposing /metrics, /debug/quorum, and /ledgers.
	srv := horizon.New(node, loop, networkID)
	srv.Mu = loop.Locker()
	srv.SetIngress(horizon.IngressConfig{
		SourceRate:  ingress.SubmitRate,
		SourceBurst: ingress.SubmitBurst,
		IPRate:      ingress.SubmitIPRate,
		IPBurst:     ingress.SubmitIPBurst,
	})

	// Detection stack: registry sampler → SLO engine → liveness watchdog →
	// flight recorder. The pre-sample hook refreshes the pull-style quorum
	// gauges under the event-loop lock, because ledger close — the usual
	// refresher — is exactly what a stall withholds. peer-loss arms at
	// threshold-1: fewer live peers than that makes quorum unreachable.
	stack := alerts.Build(cliutil.AlertWiring{
		Node:     node,
		NodeName: seed,
		MinPeers: qset.Threshold - 1,
		Pre:      func() { loop.Run(func() { node.RefreshQuorumHealth() }) },
		Log:      ob.Log,
	})
	if stack != nil {
		srv.SetAlerts(stack.Engine, seed, stack.Clock)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if arch != nil {
		fmt.Printf("archiving to %s (checkpoint every %d ledger(s), bucket spill level %d)\n",
			dur.DataDir, max(dur.CheckpointInterval, 1), dur.SpillLevel)
	}

	// SIGQUIT dumps a crash bundle without killing the process — the
	// operator's on-demand post-mortem switch.
	if stack != nil {
		stack.Start()
		quitc := make(chan os.Signal, 1)
		signal.Notify(quitc, syscall.SIGQUIT)
		defer signal.Stop(quitc)
		go func() {
			for range quitc {
				if dir, err := stack.Flight.Dump("sigquit"); err != nil {
					fmt.Fprintf(os.Stderr, "crash bundle: %v\n", err)
				} else {
					fmt.Fprintf(os.Stderr, "crash bundle written to %s\n", dir)
				}
			}
		}()
	}

	servers := make([]*http.Server, 0, 2)
	errc := make(chan error, 2)
	for _, addr := range []string{horizonAddr, metricsAddr} {
		if addr == "" {
			continue
		}
		hs := &http.Server{Addr: addr, Handler: srv.Handler()}
		servers = append(servers, hs)
		go func() {
			if err := hs.ListenAndServe(); !errors.Is(err, http.ErrServerClosed) {
				errc <- err
			}
		}()
	}

	fmt.Printf("validator %s (%s)\n", seed, node.ID())
	fmt.Printf("overlay listening on %s, dialing %d peer(s); quorum %d-of-%d, ledgers every %v\n",
		mgr.Addr(), len(peers), qset.Threshold, len(qset.Validators), interval)
	if horizonAddr != "" {
		fmt.Printf("horizon on %s — try: curl localhost%s/ledgers/latest\n", horizonAddr, horizonAddr)
	}
	if metricsAddr != "" {
		fmt.Printf("metrics on %s — try: curl localhost%s/metrics\n", metricsAddr, metricsAddr)
	}

	select {
	case <-ctx.Done():
		fmt.Fprintln(os.Stderr, "shutting down")
	case err := <-errc:
		return err
	}

	// Graceful shutdown: stop serving HTTP, halt the sampler (its pre-hook
	// takes the event-loop lock, so it must quiesce before the loop dies),
	// tear down the overlay, then flush the trace while the node state is
	// quiescent.
	sctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	for _, hs := range servers {
		if err := hs.Shutdown(sctx); err != nil {
			fmt.Fprintf(os.Stderr, "http shutdown: %v\n", err)
		}
	}
	stack.Stop()
	mgr.Close()
	loop.Close()
	if tracer != nil {
		if err := common.WriteTrace(tracer); err != nil {
			return fmt.Errorf("writing trace: %w", err)
		}
	}
	return nil
}

// hasCheckpoint reports whether the archive holds a restorable checkpoint.
func hasCheckpoint(a *history.Archive) bool {
	_, err := a.LatestCheckpointSeq()
	return err == nil
}
