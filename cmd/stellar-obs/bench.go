package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"os"
	"strconv"
	"time"

	"stellar/internal/ledger"
	"stellar/internal/obs/collect"
	"stellar/internal/stellarcrypto"
)

// The cluster bench runner: drive payment load through horizon against a
// live TCP quorum, then measure from the fleet's own telemetry — ledger
// cadence from observed closes, submit→applied percentiles from the
// merged cross-node trace, tx/s from the herder's applied counters.
//
// Horizon derives each transaction's sequence number from current account
// state plus its pending pool, so one account can keep a handful of
// payments in flight. The driver fans load across -accounts funded bench
// accounts (created from the demo-master genesis account) and submits one
// payment per account per observed ledger close, round-robin across the
// nodes.
//
// With -probe the driver instead ramps offered load step by step until
// the hardened ingress pushes back with 429s, and reports the sustained
// admission ceiling plus the observed backpressure contract.

type benchClient struct {
	http *http.Client
}

// submitResult classifies one submission: the admission pipeline's 429s
// and 503s are measured outcomes, not request failures.
type submitResult struct {
	Status     int
	Hash       string
	Err        string
	RetryAfter int64  // seconds, from the Retry-After header
	MinFee     string // stroops, from the 429 body's surge-fee hint
}

// accepted reports whether the submission entered the pool (202) or was
// already there (200).
func (r *submitResult) accepted() bool {
	return r.Status == http.StatusAccepted || r.Status == http.StatusOK
}

// backpressure reports a deliberate push-back (429/503) rather than an
// acceptance or a hard failure.
func (r *submitResult) backpressure() bool {
	return r.Status == http.StatusTooManyRequests || r.Status == http.StatusServiceUnavailable
}

// submit posts one transaction and classifies the response. Only
// transport failures return an error.
func (b *benchClient) submit(base string, req any) (*submitResult, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return nil, err
	}
	resp, err := b.http.Post(base+"/transactions", "application/json", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	res := &submitResult{Status: resp.StatusCode}
	if ra := resp.Header.Get("Retry-After"); ra != "" {
		res.RetryAfter, _ = strconv.ParseInt(ra, 10, 64)
	}
	var payload struct {
		Hash   string `json:"hash"`
		Error  string `json:"error"`
		MinFee string `json:"min_fee"`
	}
	_ = json.NewDecoder(resp.Body).Decode(&payload)
	res.Hash, res.Err, res.MinFee = payload.Hash, payload.Error, payload.MinFee
	return res, nil
}

// mustAccept submits and fails unless the transaction was admitted —
// the right contract for setup transactions like funding.
func (b *benchClient) mustAccept(base string, req any) error {
	res, err := b.submit(base, req)
	if err != nil {
		return err
	}
	if !res.accepted() {
		return fmt.Errorf("submit: status %d: %s", res.Status, res.Err)
	}
	return nil
}

type submitOp struct {
	Type        string `json:"type"`
	Destination string `json:"destination,omitempty"`
	Asset       string `json:"asset,omitempty"`
	Amount      string `json:"amount,omitempty"`
}

type submitReq struct {
	SourceSeed string     `json:"source_seed"`
	Operations []submitOp `json:"operations"`
}

func benchAcctLabel(i int) string { return fmt.Sprintf("bench-acct-%d", i) }

func benchAcctID(i int) string {
	kp := stellarcrypto.KeyPairFromString(benchAcctLabel(i))
	return string(ledger.AccountIDFromPublicKey(kp.Public))
}

// benchPayment builds the i-th bench account's unit payment to its ring
// neighbor.
func benchPayment(i, accounts int) submitReq {
	return submitReq{
		SourceSeed: benchAcctLabel(i),
		Operations: []submitOp{{
			Type: "payment", Destination: benchAcctID((i + 1) % accounts),
			Asset: "native", Amount: "1",
		}},
	}
}

func cmdBench(args []string) error {
	fs := flag.NewFlagSet("bench", flag.ExitOnError)
	nodes := targetsFlag(fs)
	duration := fs.Duration("duration", 20*time.Second, "load phase length")
	accounts := fs.Int("accounts", 8, "bench accounts (max txs per ledger)")
	out := fs.String("o", "BENCH_cluster.json", "bench report output path (- = stdout)")
	traceOut := fs.String("trace-out", "", "also write the merged Perfetto trace here")
	master := fs.String("master", "demo-master", "funding account seed label")
	timeout := fs.Duration("timeout", 10*time.Second, "per-request timeout")
	probe := fs.Bool("probe", false, "ramp offered load until the ingress pushes back; report the ceiling")
	probeStart := fs.Float64("probe-start", 4, "probe: first step's offered rate (tx/s)")
	probeFactor := fs.Float64("probe-factor", 2, "probe: offered-rate multiplier per step")
	probeStep := fs.Duration("probe-step", 5*time.Second, "probe: duration of each load step")
	probeMaxSteps := fs.Int("probe-max-steps", 8, "probe: step cap if backpressure never appears")
	fs.Parse(args)
	targets, err := parseTargets(*nodes)
	if err != nil {
		return err
	}
	if *accounts < 1 {
		return fmt.Errorf("bench: need at least one account")
	}
	if *probe && (*probeStart <= 0 || *probeFactor <= 1 || *probeStep <= 0 || *probeMaxSteps < 1) {
		return fmt.Errorf("bench: probe needs start > 0, factor > 1, step > 0, max-steps >= 1")
	}

	c := collect.NewClient(*timeout)
	b := &benchClient{http: &http.Client{Timeout: *timeout}}
	primary := targets[0]

	// Phase 1: fund the bench accounts with one multi-op create_account tx
	// and wait for them to exist on the primary node.
	fmt.Fprintf(os.Stderr, "bench: funding %d accounts from %s...\n", *accounts, *master)
	fund := submitReq{SourceSeed: *master}
	for i := 0; i < *accounts; i++ {
		fund.Operations = append(fund.Operations, submitOp{
			Type: "create_account", Destination: benchAcctID(i), Amount: "1000",
		})
	}
	if err := b.mustAccept(primary.URL, fund); err != nil {
		return fmt.Errorf("funding: %w", err)
	}
	if err := waitForAccount(b, primary.URL, benchAcctID(*accounts-1), 60*time.Second); err != nil {
		return err
	}

	start := c.ScrapeAll(targets)
	for _, s := range start {
		if s.Err != nil {
			return fmt.Errorf("scrape %s: %v", s.Target.URL, s.Err)
		}
	}

	if *probe {
		return runProbe(c, b, targets, start, probeConfig{
			accounts: *accounts, startRate: *probeStart, factor: *probeFactor,
			step: *probeStep, maxSteps: *probeMaxSteps,
			out: *out, traceOut: *traceOut,
		})
	}

	// Phase 2: drive one payment per account per observed ledger close for
	// the load window, recording the wall time each new ledger appeared.
	startSeq := start[0].Ledger.Sequence
	fmt.Fprintf(os.Stderr, "bench: driving load for %s from ledger %d...\n", *duration, startSeq)

	var (
		closesAt     []time.Time
		submitted    int
		accepted     int
		rejected429  int
		rejected503  int
		backoffUntil time.Time
		lastSeq      = startSeq
		t0           = time.Now()
	)
	submitRound := func() {
		// Backpressure from a previous round parks the whole driver until
		// the server-suggested retry time: offered load yields instead of
		// hammering a saturated ingress.
		if time.Now().Before(backoffUntil) {
			return
		}
		for i := 0; i < *accounts; i++ {
			node := targets[(submitted+i)%len(targets)]
			res, err := b.submit(node.URL, benchPayment(i, *accounts))
			if err != nil {
				continue
			}
			submitted++
			switch {
			case res.accepted():
				accepted++
			case res.Status == http.StatusTooManyRequests:
				rejected429++
			case res.Status == http.StatusServiceUnavailable:
				rejected503++
			}
			if res.backpressure() && res.RetryAfter > 0 {
				backoffUntil = time.Now().Add(time.Duration(res.RetryAfter) * time.Second)
			}
		}
	}
	submitRound() // seed the first ledger's load before waiting on a close
	for time.Since(t0) < *duration {
		time.Sleep(50 * time.Millisecond)
		li, err := c.FetchLedger(primary)
		if err != nil {
			continue
		}
		if li.Sequence > lastSeq {
			closesAt = append(closesAt, time.Now())
			lastSeq = li.Sequence
			submitRound()
		}
	}

	// Phase 3: drain — let the in-flight payments close — then scrape the
	// whole fleet and compute the report.
	drainTo := lastSeq + 2
	drainDeadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(drainDeadline) {
		li, err := c.FetchLedger(primary)
		if err == nil && li.Sequence >= drainTo {
			break
		}
		time.Sleep(100 * time.Millisecond)
	}
	end := c.ScrapeAll(targets)
	for _, s := range end {
		if s.Err != nil {
			return fmt.Errorf("scrape %s: %v", s.Target.URL, s.Err)
		}
	}

	elapsed := time.Since(t0).Seconds()
	applied := end[0].Metrics.Sum("herder_tx_per_ledger_sum") - start[0].Metrics.Sum("herder_tx_per_ledger_sum")
	ledgers := int(end[0].Ledger.Sequence - startSeq)
	var intervals []float64
	for i := 1; i < len(closesAt); i++ {
		intervals = append(intervals, closesAt[i].Sub(closesAt[i-1]).Seconds())
	}
	latencies, crossNode := collect.TraceLatencies(end)

	report := &collect.BenchReport{
		Kind:          "cluster",
		GeneratedUnix: time.Now().Unix(),
		Cluster: &collect.ClusterBench{
			Nodes:           len(targets),
			DurationSeconds: elapsed,
			LedgersClosed:   ledgers,
			TxSubmitted:     submitted,
			TxAccepted:      accepted,
			TxRejected429:   rejected429,
			TxRejected503:   rejected503,
			TxApplied:       int(applied),
			TxPerSecond:     applied / elapsed,
			CloseInterval:   collect.Summarize(intervals),
			SubmitToApplied: collect.Summarize(latencies),
			CrossNodeTraces: crossNode,
		},
	}
	if err := writeBenchReport(report, *out); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr,
		"bench: %d ledgers, %d/%d txs applied (%.1f tx/s, %d×429 %d×503), close p50 %.3fs, submit→applied p50 %.3fs (%d samples, %d cross-node traces)\n",
		ledgers, int(applied), submitted, report.Cluster.TxPerSecond,
		rejected429, rejected503,
		report.Cluster.CloseInterval.P50, report.Cluster.SubmitToApplied.P50,
		report.Cluster.SubmitToApplied.Count, crossNode)

	if *traceOut != "" {
		stats, err := writeMerged(end, *traceOut)
		if err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "bench: merged trace → %s (%d spans, %d cross-node links)\n",
			*traceOut, stats.SpansOut, stats.CrossLinks)
	}
	return nil
}

type probeConfig struct {
	accounts  int
	startRate float64
	factor    float64
	step      time.Duration
	maxSteps  int
	out       string
	traceOut  string
}

// runProbe ramps offered load geometrically until the ingress answers
// with 429s (or the step cap), then verifies the backpressure contract
// and that every accepted transaction eventually applied.
func runProbe(c *collect.Client, b *benchClient, targets []collect.Target, start []*collect.Scrape, cfg probeConfig) error {
	primary := targets[0]
	startSeq := start[0].Ledger.Sequence
	startApplied := start[0].Metrics.Sum("herder_tx_per_ledger_sum")

	pb := &collect.ProbeBench{RetryAfterValid: true}
	var acceptedNew int // 202s only — the promises we audit after draining
	rate := cfg.startRate
	acct := 0
	t0 := time.Now()
	for stepIdx := 0; stepIdx < cfg.maxSteps; stepIdx++ {
		fmt.Fprintf(os.Stderr, "bench: probe step %d at %.1f tx/s...\n", stepIdx+1, rate)
		st := collect.ProbeStep{
			OfferedTxPerSecond: rate,
			DurationSeconds:    cfg.step.Seconds(),
		}
		interval := time.Duration(float64(time.Second) / rate)
		stepEnd := time.Now().Add(cfg.step)
		next := time.Now()
		for time.Now().Before(stepEnd) {
			if wait := time.Until(next); wait > 0 {
				time.Sleep(wait)
				continue
			}
			next = next.Add(interval)
			// Pin each account to one node: sequence chaining consults the
			// receiving node's pool, so spraying one account across nodes
			// would race the flood and double-accept identical payments.
			src := acct % cfg.accounts
			node := targets[src%len(targets)]
			res, err := b.submit(node.URL, benchPayment(src, cfg.accounts))
			acct++
			st.Submitted++
			switch {
			case err != nil:
				st.Errors++
			case res.Status == http.StatusAccepted:
				st.Accepted++
				acceptedNew++
			case res.Status == http.StatusOK:
				st.Accepted++
			case res.Status == http.StatusTooManyRequests:
				st.Rejected429++
				if res.RetryAfter < 1 {
					pb.RetryAfterValid = false
				}
				if res.MinFee != "" {
					pb.MinFeeHint = res.MinFee
				}
			case res.Status == http.StatusServiceUnavailable:
				st.Rejected503++
				if res.RetryAfter < 1 {
					pb.RetryAfterValid = false
				}
			default:
				st.Errors++
			}
		}
		pb.Steps = append(pb.Steps, st)
		pb.Accepted += st.Accepted
		pb.Rejected429 += st.Rejected429
		pb.Rejected503 += st.Rejected503
		if st.Rejected429 > 0 {
			pb.BackpressureTxPerSecond = rate
			break
		}
		pb.CeilingTxPerSecond = rate
		rate *= cfg.factor
	}

	// Drain until every accepted transaction has applied (the zero
	// accepted-then-lost audit) or the deadline passes.
	drainDeadline := time.Now().Add(30 * time.Second)
	applied := 0.0
	for {
		if m, err := c.FetchMetrics(primary); err == nil {
			applied = m.Sum("herder_tx_per_ledger_sum") - startApplied
			if int(applied) >= acceptedNew {
				break
			}
		}
		if time.Now().After(drainDeadline) {
			break
		}
		time.Sleep(200 * time.Millisecond)
	}
	if lost := acceptedNew - int(applied); lost > 0 {
		pb.AcceptedThenLost = lost
	}

	end := c.ScrapeAll(targets)
	for _, s := range end {
		if s.Err != nil {
			return fmt.Errorf("scrape %s: %v", s.Target.URL, s.Err)
		}
	}
	elapsed := time.Since(t0).Seconds()
	latencies, crossNode := collect.TraceLatencies(end)
	var submitted int
	for _, s := range pb.Steps {
		submitted += s.Submitted
	}
	report := &collect.BenchReport{
		Kind:          "cluster",
		GeneratedUnix: time.Now().Unix(),
		Cluster: &collect.ClusterBench{
			Nodes:           len(targets),
			DurationSeconds: elapsed,
			LedgersClosed:   int(end[0].Ledger.Sequence - startSeq),
			TxSubmitted:     submitted,
			TxAccepted:      pb.Accepted,
			TxRejected429:   pb.Rejected429,
			TxRejected503:   pb.Rejected503,
			TxApplied:       int(applied),
			TxPerSecond:     applied / elapsed,
			SubmitToApplied: collect.Summarize(latencies),
			CrossNodeTraces: crossNode,
			Probe:           pb,
		},
	}
	if err := writeBenchReport(report, cfg.out); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr,
		"bench: probe ceiling %.1f tx/s (backpressure at %.1f), %d accepted / %d×429 / %d×503, %d applied, lost %d\n",
		pb.CeilingTxPerSecond, pb.BackpressureTxPerSecond,
		pb.Accepted, pb.Rejected429, pb.Rejected503, int(applied), pb.AcceptedThenLost)

	if cfg.traceOut != "" {
		stats, err := writeMerged(end, cfg.traceOut)
		if err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "bench: merged trace → %s (%d spans, %d cross-node links)\n",
			cfg.traceOut, stats.SpansOut, stats.CrossLinks)
	}
	return nil
}

func writeBenchReport(r *collect.BenchReport, path string) error {
	w := os.Stdout
	if path != "-" {
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	return collect.WriteBench(w, r)
}

// waitForAccount polls until the account exists (the funding tx applied).
func waitForAccount(b *benchClient, base, id string, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		resp, err := b.http.Get(base + "/accounts/" + id)
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return nil
			}
		}
		time.Sleep(200 * time.Millisecond)
	}
	return fmt.Errorf("bench: account %s never appeared (funding tx lost?)", id)
}
