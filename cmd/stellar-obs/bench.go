package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"os"
	"time"

	"stellar/internal/ledger"
	"stellar/internal/obs/collect"
	"stellar/internal/stellarcrypto"
)

// The cluster bench runner: drive payment load through horizon against a
// live TCP quorum, then measure from the fleet's own telemetry — ledger
// cadence from observed closes, submit→applied percentiles from the
// merged cross-node trace, tx/s from the herder's applied counters.
//
// Horizon derives each transaction's sequence number from current account
// state, so one account can land at most one transaction per ledger. The
// driver therefore fans load across -accounts funded bench accounts
// (created from the demo-master genesis account) and submits one payment
// per account per observed ledger close, round-robin across the nodes.

type benchClient struct {
	http *http.Client
}

func (b *benchClient) submit(base string, req any) error {
	body, err := json.Marshal(req)
	if err != nil {
		return err
	}
	resp, err := b.http.Post(base+"/transactions", "application/json", bytes.NewReader(body))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		var e struct {
			Error string `json:"error"`
		}
		_ = json.NewDecoder(resp.Body).Decode(&e)
		return fmt.Errorf("submit: status %d: %s", resp.StatusCode, e.Error)
	}
	return nil
}

type submitOp struct {
	Type        string `json:"type"`
	Destination string `json:"destination,omitempty"`
	Asset       string `json:"asset,omitempty"`
	Amount      string `json:"amount,omitempty"`
}

type submitReq struct {
	SourceSeed string     `json:"source_seed"`
	Operations []submitOp `json:"operations"`
}

func benchAcctLabel(i int) string { return fmt.Sprintf("bench-acct-%d", i) }

func benchAcctID(i int) string {
	kp := stellarcrypto.KeyPairFromString(benchAcctLabel(i))
	return string(ledger.AccountIDFromPublicKey(kp.Public))
}

func cmdBench(args []string) error {
	fs := flag.NewFlagSet("bench", flag.ExitOnError)
	nodes := targetsFlag(fs)
	duration := fs.Duration("duration", 20*time.Second, "load phase length")
	accounts := fs.Int("accounts", 8, "bench accounts (max txs per ledger)")
	out := fs.String("o", "BENCH_cluster.json", "bench report output path (- = stdout)")
	traceOut := fs.String("trace-out", "", "also write the merged Perfetto trace here")
	master := fs.String("master", "demo-master", "funding account seed label")
	timeout := fs.Duration("timeout", 10*time.Second, "per-request timeout")
	fs.Parse(args)
	targets, err := parseTargets(*nodes)
	if err != nil {
		return err
	}
	if *accounts < 1 {
		return fmt.Errorf("bench: need at least one account")
	}

	c := collect.NewClient(*timeout)
	b := &benchClient{http: &http.Client{Timeout: *timeout}}
	primary := targets[0]

	// Phase 1: fund the bench accounts with one multi-op create_account tx
	// and wait for them to exist on the primary node.
	fmt.Fprintf(os.Stderr, "bench: funding %d accounts from %s...\n", *accounts, *master)
	fund := submitReq{SourceSeed: *master}
	for i := 0; i < *accounts; i++ {
		fund.Operations = append(fund.Operations, submitOp{
			Type: "create_account", Destination: benchAcctID(i), Amount: "1000",
		})
	}
	if err := b.submit(primary.URL, fund); err != nil {
		return fmt.Errorf("funding: %w", err)
	}
	if err := waitForAccount(b, primary.URL, benchAcctID(*accounts-1), 60*time.Second); err != nil {
		return err
	}

	// Phase 2: drive one payment per account per observed ledger close for
	// the load window, recording the wall time each new ledger appeared.
	start := c.ScrapeAll(targets)
	for _, s := range start {
		if s.Err != nil {
			return fmt.Errorf("scrape %s: %v", s.Target.URL, s.Err)
		}
	}
	startSeq := start[0].Ledger.Sequence
	fmt.Fprintf(os.Stderr, "bench: driving load for %s from ledger %d...\n", *duration, startSeq)

	var (
		closesAt  []time.Time
		submitted int
		lastSeq   = startSeq
		t0        = time.Now()
	)
	submitRound := func() {
		for i := 0; i < *accounts; i++ {
			req := submitReq{
				SourceSeed: benchAcctLabel(i),
				Operations: []submitOp{{
					Type: "payment", Destination: benchAcctID((i + 1) % *accounts),
					Asset: "native", Amount: "1",
				}},
			}
			node := targets[(submitted+i)%len(targets)]
			if err := b.submit(node.URL, req); err == nil {
				submitted++
			}
		}
	}
	submitRound() // seed the first ledger's load before waiting on a close
	for time.Since(t0) < *duration {
		time.Sleep(50 * time.Millisecond)
		li, err := c.FetchLedger(primary)
		if err != nil {
			continue
		}
		if li.Sequence > lastSeq {
			closesAt = append(closesAt, time.Now())
			lastSeq = li.Sequence
			submitRound()
		}
	}

	// Phase 3: drain — let the in-flight payments close — then scrape the
	// whole fleet and compute the report.
	drainTo := lastSeq + 2
	drainDeadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(drainDeadline) {
		li, err := c.FetchLedger(primary)
		if err == nil && li.Sequence >= drainTo {
			break
		}
		time.Sleep(100 * time.Millisecond)
	}
	end := c.ScrapeAll(targets)
	for _, s := range end {
		if s.Err != nil {
			return fmt.Errorf("scrape %s: %v", s.Target.URL, s.Err)
		}
	}

	elapsed := time.Since(t0).Seconds()
	applied := end[0].Metrics.Sum("herder_tx_per_ledger_sum") - start[0].Metrics.Sum("herder_tx_per_ledger_sum")
	ledgers := int(end[0].Ledger.Sequence - startSeq)
	var intervals []float64
	for i := 1; i < len(closesAt); i++ {
		intervals = append(intervals, closesAt[i].Sub(closesAt[i-1]).Seconds())
	}
	latencies, crossNode := collect.TraceLatencies(end)

	report := &collect.BenchReport{
		Kind:          "cluster",
		GeneratedUnix: time.Now().Unix(),
		Cluster: &collect.ClusterBench{
			Nodes:           len(targets),
			DurationSeconds: elapsed,
			LedgersClosed:   ledgers,
			TxSubmitted:     submitted,
			TxApplied:       int(applied),
			TxPerSecond:     applied / elapsed,
			CloseInterval:   collect.Summarize(intervals),
			SubmitToApplied: collect.Summarize(latencies),
			CrossNodeTraces: crossNode,
		},
	}
	if err := writeBenchReport(report, *out); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr,
		"bench: %d ledgers, %d/%d txs applied (%.1f tx/s), close p50 %.3fs, submit→applied p50 %.3fs (%d samples, %d cross-node traces)\n",
		ledgers, int(applied), submitted, report.Cluster.TxPerSecond,
		report.Cluster.CloseInterval.P50, report.Cluster.SubmitToApplied.P50,
		report.Cluster.SubmitToApplied.Count, crossNode)

	if *traceOut != "" {
		stats, err := writeMerged(end, *traceOut)
		if err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "bench: merged trace → %s (%d spans, %d cross-node links)\n",
			*traceOut, stats.SpansOut, stats.CrossLinks)
	}
	return nil
}

func writeBenchReport(r *collect.BenchReport, path string) error {
	w := os.Stdout
	if path != "-" {
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	return collect.WriteBench(w, r)
}

// waitForAccount polls until the account exists (the funding tx applied).
func waitForAccount(b *benchClient, base, id string, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		resp, err := b.http.Get(base + "/accounts/" + id)
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return nil
			}
		}
		time.Sleep(200 * time.Millisecond)
	}
	return fmt.Errorf("bench: account %s never appeared (funding tx lost?)", id)
}
