// stellar-obs is the fleet observability collector: it scrapes every
// node's /metrics, /debug/quorum, and /debug/trace/export endpoints and
// turns per-process silos into cluster-level views.
//
//	stellar-obs table -nodes http://127.0.0.1:28000,http://127.0.0.1:28001
//	stellar-obs table -nodes ... -watch 2s            # live fleet table
//	stellar-obs merge -nodes ... -o cluster-trace.json # Perfetto trace
//	stellar-obs bench -nodes ... -duration 20s -o BENCH_cluster.json
//	stellar-obs check -f BENCH_cluster.json            # schema gate
//
// merge exits non-zero with -fail-on-drop if the merged trace lost spans;
// bench drives payment load through horizon and measures close cadence,
// submit→applied latency percentiles (from the merged cross-node trace),
// and tx/s.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"stellar/internal/obs/collect"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "table":
		err = cmdTable(os.Args[2:])
	case "alerts":
		err = cmdAlerts(os.Args[2:])
	case "merge":
		err = cmdMerge(os.Args[2:])
	case "bench":
		err = cmdBench(os.Args[2:])
	case "check":
		err = cmdCheck(os.Args[2:])
	case "-h", "-help", "--help", "help":
		usage()
		return
	default:
		fmt.Fprintf(os.Stderr, "stellar-obs: unknown command %q\n", os.Args[1])
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "stellar-obs: %v\n", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprint(os.Stderr, `usage: stellar-obs <command> [flags]

commands:
  table   render the fleet status table (add -watch for live refresh)
  alerts  sweep every node's /debug/alerts (add -fail-on-firing for CI)
  merge   merge every node's span store into one Perfetto trace
  bench   drive load and write a stellar-bench/v1 cluster report
  check   validate a BENCH_*.json document against the schema
`)
}

func targetsFlag(fs *flag.FlagSet) *string {
	return fs.String("nodes", "", "comma-separated node base URLs (name=url accepted)")
}

func parseTargets(s string) ([]collect.Target, error) {
	ts := collect.ParseTargets(s)
	if len(ts) == 0 {
		return nil, fmt.Errorf("no -nodes given")
	}
	return ts, nil
}

func cmdTable(args []string) error {
	fs := flag.NewFlagSet("table", flag.ExitOnError)
	nodes := targetsFlag(fs)
	watch := fs.Duration("watch", 0, "refresh interval (0 = one shot)")
	count := fs.Int("count", 0, "number of watch passes (0 = forever)")
	timeout := fs.Duration("timeout", 5*time.Second, "per-request timeout")
	fs.Parse(args)
	targets, err := parseTargets(*nodes)
	if err != nil {
		return err
	}
	c := collect.NewClient(*timeout)
	if *watch <= 0 {
		scrapes := c.ScrapeAll(targets)
		rows := make([]collect.NodeStatus, len(scrapes))
		for i, s := range scrapes {
			rows[i] = collect.Status(s, nil)
		}
		fmt.Print(collect.FleetTable(rows))
		return nil
	}
	collect.Watch(c, targets, *watch, *count, func(table string) {
		fmt.Printf("--- %s\n%s", time.Now().Format(time.TimeOnly), table)
	})
	return nil
}

func cmdAlerts(args []string) error {
	fs := flag.NewFlagSet("alerts", flag.ExitOnError)
	nodes := targetsFlag(fs)
	watch := fs.Duration("watch", 0, "refresh interval (0 = one shot)")
	count := fs.Int("count", 0, "number of watch passes (0 = forever)")
	timeout := fs.Duration("timeout", 5*time.Second, "per-request timeout")
	failOnFiring := fs.Bool("fail-on-firing", false, "exit non-zero if any alert is firing (or any node is down)")
	fs.Parse(args)
	targets, err := parseTargets(*nodes)
	if err != nil {
		return err
	}
	c := collect.NewClient(*timeout)
	var firing int
	for i := 0; ; i++ {
		if i > 0 {
			time.Sleep(*watch)
		}
		rows := collect.FetchAlertRows(c, targets)
		var table string
		table, firing = collect.AlertsTable(rows)
		if *watch > 0 {
			fmt.Printf("--- %s\n", time.Now().Format(time.TimeOnly))
		}
		fmt.Print(table)
		if *watch <= 0 || (*count > 0 && i+1 >= *count) {
			break
		}
	}
	if *failOnFiring && firing > 0 {
		return fmt.Errorf("%d alert(s) firing", firing)
	}
	return nil
}

func cmdMerge(args []string) error {
	fs := flag.NewFlagSet("merge", flag.ExitOnError)
	nodes := targetsFlag(fs)
	out := fs.String("o", "cluster-trace.json", "output trace path (- = stdout)")
	failOnDrop := fs.Bool("fail-on-drop", false, "exit non-zero if the merge lost spans")
	timeout := fs.Duration("timeout", 10*time.Second, "per-request timeout")
	fs.Parse(args)
	targets, err := parseTargets(*nodes)
	if err != nil {
		return err
	}
	c := collect.NewClient(*timeout)
	scrapes := c.ScrapeAll(targets)
	for _, s := range scrapes {
		if s.Err != nil {
			return fmt.Errorf("scrape %s: %v", s.Target.URL, s.Err)
		}
	}
	stats, err := writeMerged(scrapes, *out)
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr,
		"merged %d nodes: %d spans in, %d out, %d cross-node links, %d unresolved, %d dropped at source, max clock offset %.1fms\n",
		stats.Nodes, stats.SpansIn, stats.SpansOut, stats.CrossLinks,
		stats.Unresolved, stats.DroppedAtSource, float64(stats.MaxOffsetNanos)/1e6)
	if *failOnDrop && !stats.Lossless() {
		return fmt.Errorf("merge dropped %d spans", stats.SpansIn-stats.SpansOut)
	}
	return nil
}

func writeMerged(scrapes []*collect.Scrape, path string) (*collect.MergeStats, error) {
	w := os.Stdout
	if path != "-" {
		f, err := os.Create(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		w = f
	}
	return collect.Merge(scrapes, w)
}

func cmdCheck(args []string) error {
	fs := flag.NewFlagSet("check", flag.ExitOnError)
	file := fs.String("f", "", "BENCH_*.json file to validate")
	fs.Parse(args)
	paths := fs.Args()
	if *file != "" {
		paths = append([]string{*file}, paths...)
	}
	if len(paths) == 0 {
		return fmt.Errorf("check: no files given")
	}
	for _, p := range paths {
		f, err := os.Open(p)
		if err != nil {
			return err
		}
		br, err := collect.CheckBench(f)
		f.Close()
		if err != nil {
			return fmt.Errorf("%s: %w", p, err)
		}
		fmt.Printf("%s: ok (schema %s, kind %s)\n", p, br.Schema, br.Kind)
	}
	return nil
}
