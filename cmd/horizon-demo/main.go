// Command horizon-demo runs a small Stellar network with a horizon HTTP
// API in front of it (the Figure 5 architecture): the validators close
// ledgers on a real-time cadence while horizon serves clients from the
// first validator's view.
//
//	horizon-demo -listen :8000 -validators 3
//
// Then, for example:
//
//	curl localhost:8000/ledgers/latest
//	curl localhost:8000/accounts/<G...>
//	curl localhost:8000/debug/quorum
//	curl -X POST localhost:8000/transactions -d '{
//	    "source_seed": "demo-master",
//	    "operations": [{"type":"create_account","destination":"G...","amount":"100"}]}'
//
// The demo master account's seed label is printed at startup; any account
// created from a seed label can sign via the same label.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"stellar/internal/cliutil"
	"stellar/internal/fba"
	"stellar/internal/herder"
	"stellar/internal/horizon"
	"stellar/internal/ledger"
	"stellar/internal/obs"
	"stellar/internal/simnet"
	"stellar/internal/stellarcrypto"
)

func main() {
	listen := flag.String("listen", ":8000", "HTTP listen address")
	validators := flag.Int("validators", 1, "number of validator nodes (majority quorum)")
	interval := flag.Duration("interval", 5*time.Second, "ledger interval")
	pprofFlag := flag.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/")
	verbose := flag.Bool("v", false, "structured node logging to stderr")
	var common cliutil.CommonFlags
	common.Register(flag.CommandLine)
	var ingress cliutil.IngressFlags
	ingress.Register(flag.CommandLine)
	var alerts cliutil.AlertFlags
	alerts.Register(flag.CommandLine)
	flag.Parse()
	if *validators < 1 {
		fmt.Fprintln(os.Stderr, "error: -validators must be at least 1")
		os.Exit(2)
	}

	var rootLog *slog.Logger
	if *verbose {
		rootLog = obs.NewLogger(os.Stderr, slog.LevelDebug)
	}
	// Demo processes serve real traffic, so spans run on the wall clock
	// (the simulation below is driven in near-real-time anyway).
	var tracer *obs.Tracer
	if common.Tracing() {
		tracer = obs.NewTracer(nil)
		tracer.SetLimit(common.TraceLimit)
	}

	net := simnet.New(time.Now().UnixNano())
	networkID := stellarcrypto.HashBytes([]byte("horizon-demo-network"))
	kps := stellarcrypto.DeterministicKeyPairs("demo-validator", *validators)
	ids := make([]fba.NodeID, *validators)
	for i, kp := range kps {
		ids[i] = fba.NodeIDFromPublicKey(kp.Public)
	}
	qset := fba.Majority(ids...)

	// Genesis, plus a human-friendly master account controlled by the
	// seed label "demo-master" so curl users can sign transactions.
	genesis, masterKP := herder.GenesisState(networkID)
	demoKP := stellarcrypto.KeyPairFromString("demo-master")
	demo := ledger.AccountIDFromPublicKey(demoKP.Public)
	master := ledger.AccountIDFromPublicKey(masterKP.Public)
	op := &ledger.CreateAccount{Destination: demo, StartingBalance: 1_000_000 * ledger.One}
	if err := op.Apply(genesis, &ledger.ApplyEnv{LedgerSeq: 1}, master); err != nil {
		fmt.Fprintf(os.Stderr, "error: %v\n", err)
		os.Exit(1)
	}
	genesisSnapshot := genesis.SnapshotAll()
	genesisHeader := ledger.GenesisHeader(genesis, 0)

	nodes := make([]*herder.Node, *validators)
	for i, kp := range kps {
		ob := &obs.Obs{Tracer: tracer}
		if rootLog != nil {
			ob.Log = rootLog.With(slog.Int("node", i))
		}
		node, err := herder.New(net, herder.Config{
			Keys:                kp,
			QSet:                qset,
			NetworkID:           networkID,
			LedgerInterval:      *interval,
			VerifyWorkers:       common.VerifyWorkers,
			VerifyCacheSize:     common.VerifyCache,
			ApplyWorkers:        common.ApplyWorkers,
			ApplyCheck:          common.ApplyCheck,
			MempoolMaxTxs:       ingress.MempoolMax,
			MempoolMaxPerSource: ingress.MempoolPerSource,
			Obs:                 ob,
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "error: %v\n", err)
			os.Exit(1)
		}
		// Bootstrap on the simulation's timebase: close-time validation
		// compares against the virtual clock, so seeding with wall-clock
		// unix time would leave every nominated value merely maybe-valid
		// and the validators could never confirm a candidate.
		state, err := ledger.RestoreState(genesisSnapshot, genesisHeader)
		if err != nil {
			fmt.Fprintf(os.Stderr, "error: %v\n", err)
			os.Exit(1)
		}
		node.Bootstrap(state, 0)
		nodes[i] = node
	}
	for i, a := range nodes {
		for j, b := range nodes {
			if i != j {
				a.Overlay().Connect(b.Addr())
			}
		}
	}
	for _, n := range nodes {
		n.Start()
	}
	node := nodes[0]

	// Go runtime self-metrics (heap, GC pauses, goroutines) on the serving
	// node's registry, refreshed at every /metrics scrape.
	obs.RegisterRuntimeMetrics(node.Obs().Reg)
	obs.RegisterTracerMetrics(node.Obs().Reg, tracer)

	srv := horizon.New(node, net, networkID)
	srv.EnablePprof = *pprofFlag
	srv.SetIngress(horizon.IngressConfig{
		SourceRate:  ingress.SubmitRate,
		SourceBurst: ingress.SubmitBurst,
		IPRate:      ingress.SubmitIPRate,
		IPBurst:     ingress.SubmitIPBurst,
	})

	// Detection stack over the serving validator: sampler → SLO engine →
	// watchdog → flight recorder. The pre-sample hook refreshes the quorum
	// gauges under the server lock (ledger close normally refreshes them —
	// exactly the event a stall withholds). MinPeers stays 0: the demo's
	// validators share one process, so there is no transport to lose.
	const nodeName = "demo-validator-0"
	stack := alerts.Build(cliutil.AlertWiring{
		Node:     node,
		NodeName: nodeName,
		Pre: func() {
			srv.Mu.Lock()
			node.RefreshQuorumHealth()
			srv.Mu.Unlock()
		},
		Log: node.Obs().Log,
	})
	if stack != nil {
		srv.SetAlerts(stack.Engine, nodeName, stack.Clock)
		stack.Start()
		defer stack.Stop()
	}

	// Drive virtual time in near-real-time under the server lock until
	// shutdown is requested.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	go func() {
		const step = 50 * time.Millisecond
		for ctx.Err() == nil {
			time.Sleep(step)
			srv.Mu.Lock()
			net.RunFor(step)
			srv.Mu.Unlock()
		}
	}()

	fmt.Printf("%d validator(s) closing ledgers every %v (quorum: %d-of-%d)\n",
		*validators, *interval, qset.Threshold, len(qset.Validators))
	fmt.Printf("demo master account: %s (source_seed \"demo-master\", balance 1,000,000 XLM)\n", demo)
	fmt.Printf("horizon listening on %s (serving validator %s)\n", *listen, node.ID())
	fmt.Printf("try: curl localhost%s/ledgers/latest\n", *listen)
	fmt.Printf("     curl localhost%s/metrics           (Prometheus text)\n", *listen)
	fmt.Printf("     curl localhost%s/metrics.json      (JSON summary)\n", *listen)
	fmt.Printf("     curl localhost%s/debug/slots/3/trace  (SCP slot timeline)\n", *listen)
	fmt.Printf("     curl localhost%s/debug/quorum      (live quorum health)\n", *listen)
	if *pprofFlag {
		fmt.Printf("     go tool pprof localhost%s/debug/pprof/profile\n", *listen)
	}
	if tracer != nil {
		fmt.Printf("tracing to %s (flushed on Ctrl-C)\n", common.TracePath)
	}

	// Serve until SIGINT/SIGTERM, then drain in-flight requests and flush
	// the trace while the simulation driver is parked.
	hs := &http.Server{Addr: *listen, Handler: srv.Handler()}
	go func() {
		<-ctx.Done()
		sctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := hs.Shutdown(sctx); err != nil {
			fmt.Fprintf(os.Stderr, "http shutdown: %v\n", err)
		}
	}()
	if err := hs.ListenAndServe(); !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintf(os.Stderr, "error: %v\n", err)
		os.Exit(1)
	}
	<-ctx.Done()
	if tracer != nil {
		srv.Mu.Lock()
		err := common.WriteTrace(tracer)
		srv.Mu.Unlock()
		if err != nil {
			fmt.Fprintf(os.Stderr, "error writing trace: %v\n", err)
			os.Exit(1)
		}
	}
}
