// Command horizon-demo runs a single-validator Stellar network with a
// horizon HTTP API in front of it (the Figure 5 architecture): the
// validator closes ledgers on a real-time cadence while horizon serves
// clients.
//
//	horizon-demo -listen :8000
//
// Then, for example:
//
//	curl localhost:8000/ledgers/latest
//	curl localhost:8000/accounts/<G...>
//	curl -X POST localhost:8000/transactions -d '{
//	    "source_seed": "demo-master",
//	    "operations": [{"type":"create_account","destination":"G...","amount":"100"}]}'
//
// The demo master account's seed label is printed at startup; any account
// created from a seed label can sign via the same label.
package main

import (
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"time"

	"stellar/internal/fba"
	"stellar/internal/herder"
	"stellar/internal/horizon"
	"stellar/internal/ledger"
	"stellar/internal/obs"
	"stellar/internal/simnet"
	"stellar/internal/stellarcrypto"
)

func main() {
	listen := flag.String("listen", ":8000", "HTTP listen address")
	interval := flag.Duration("interval", 5*time.Second, "ledger interval")
	verifyWorkers := flag.Int("verify-workers", 0, "signature verification pool size (0 = NumCPU, 1 = sequential)")
	verifyCache := flag.Int("verify-cache", 0, "signature verification cache entries (0 = default)")
	verbose := flag.Bool("v", false, "structured node logging to stderr")
	flag.Parse()

	ob := &obs.Obs{}
	if *verbose {
		ob.Log = obs.NewLogger(os.Stderr, slog.LevelDebug)
	}

	net := simnet.New(time.Now().UnixNano())
	networkID := stellarcrypto.HashBytes([]byte("horizon-demo-network"))
	kp := stellarcrypto.KeyPairFromString("demo-validator")
	self := fba.NodeIDFromPublicKey(kp.Public)
	node, err := herder.New(net, herder.Config{
		Keys:            kp,
		QSet:            fba.QuorumSet{Threshold: 1, Validators: []fba.NodeID{self}},
		NetworkID:       networkID,
		LedgerInterval:  *interval,
		VerifyWorkers:   *verifyWorkers,
		VerifyCacheSize: *verifyCache,
		Obs:             ob,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "error: %v\n", err)
		os.Exit(1)
	}

	// Genesis, plus a human-friendly master account controlled by the
	// seed label "demo-master" so curl users can sign transactions.
	genesis, masterKP := herder.GenesisState(networkID)
	demoKP := stellarcrypto.KeyPairFromString("demo-master")
	demo := ledger.AccountIDFromPublicKey(demoKP.Public)
	master := ledger.AccountIDFromPublicKey(masterKP.Public)
	op := &ledger.CreateAccount{Destination: demo, StartingBalance: 1_000_000 * ledger.One}
	if err := op.Apply(genesis, &ledger.ApplyEnv{LedgerSeq: 1}, master); err != nil {
		fmt.Fprintf(os.Stderr, "error: %v\n", err)
		os.Exit(1)
	}
	// Bootstrap on the simulation's timebase: close-time validation
	// compares against the virtual clock, so seeding with wall-clock unix
	// time would leave every nominated value merely maybe-valid and a
	// single validator could never confirm a candidate.
	node.Bootstrap(genesis, 0)
	node.Start()

	srv := horizon.New(node, net, networkID)

	// Drive virtual time in near-real-time under the server lock.
	go func() {
		const step = 50 * time.Millisecond
		for {
			time.Sleep(step)
			srv.Mu.Lock()
			net.RunFor(step)
			srv.Mu.Unlock()
		}
	}()

	fmt.Printf("validator %s closing ledgers every %v\n", self, *interval)
	fmt.Printf("demo master account: %s (source_seed \"demo-master\", balance 1,000,000 XLM)\n", demo)
	fmt.Printf("horizon listening on %s\n", *listen)
	fmt.Printf("try: curl localhost%s/ledgers/latest\n", *listen)
	fmt.Printf("     curl localhost%s/metrics           (Prometheus text)\n", *listen)
	fmt.Printf("     curl localhost%s/metrics.json      (JSON summary)\n", *listen)
	fmt.Printf("     curl localhost%s/debug/slots/3/trace  (SCP slot timeline)\n", *listen)
	if err := http.ListenAndServe(*listen, srv.Handler()); err != nil {
		fmt.Fprintf(os.Stderr, "error: %v\n", err)
		os.Exit(1)
	}
}
