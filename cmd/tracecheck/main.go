// Command tracecheck validates a Chrome trace-event JSON file (the
// Object Format that Perfetto and chrome://tracing load): every event
// must be well-formed, every span's parent link must resolve, and every
// flow arrow must have both endpoints. With -lifecycle it additionally
// requires the full transaction lifecycle of the paper's §6 figures —
// at least one transaction whose submit → pending → consensus → applied
// chain, and the slot/balloting/apply phase tree it links to, are all
// present and parented correctly.
//
// With -cluster the file must be a merged multi-process trace (the
// stellar-obs merge output): spans from at least two processes, every
// remote_parent reference resolving to a span in the file, and at least
// one flow arrow whose endpoints sit in different processes — the proof
// that trace context actually crossed the TCP overlay.
//
// Usage:
//
//	tracecheck out.json
//	tracecheck -lifecycle out.json
//	tracecheck -cluster cluster-trace.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"stellar/internal/obs"
)

// event is one trace-event record; unknown fields are tolerated (the
// format is extensible) but the known ones are type-checked by decoding.
type event struct {
	Name string            `json:"name"`
	Ph   string            `json:"ph"`
	Ts   *float64          `json:"ts"`
	Dur  *float64          `json:"dur"`
	Pid  *int              `json:"pid"`
	Tid  *int              `json:"tid"`
	Cat  string            `json:"cat"`
	ID   string            `json:"id"`
	Args map[string]string `json:"args"`
}

type traceFile struct {
	TraceEvents     []event `json:"traceEvents"`
	DisplayTimeUnit string  `json:"displayTimeUnit"`
}

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "tracecheck: "+format+"\n", args...)
	os.Exit(1)
}

func main() {
	lifecycle := flag.Bool("lifecycle", false,
		"require a complete parent-linked tx lifecycle (submit through archive)")
	cluster := flag.Bool("cluster", false,
		"require a merged multi-process trace with resolved cross-process links")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: tracecheck [-lifecycle] [-cluster] trace.json")
		os.Exit(2)
	}
	raw, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fail("%v", err)
	}
	var tf traceFile
	if err := json.Unmarshal(raw, &tf); err != nil {
		fail("not valid trace JSON: %v", err)
	}

	spans := 0
	nameByID := map[string]string{} // span id → name
	pidByID := map[string]int{}     // span id → process id
	parentOf := map[string]string{} // span id → parent span id
	remoteOf := map[string]string{} // span id → remote (cross-process) parent id
	flows := map[string][2]int{}    // flow id → {#s, #f}
	flowPids := map[string][2]int{} // flow id → {s pid, f pid}
	for i, ev := range tf.TraceEvents {
		switch ev.Ph {
		case "X":
			spans++
			if ev.Name == "" {
				fail("event %d: X event with no name", i)
			}
			if ev.Ts == nil || ev.Dur == nil || *ev.Dur < 0 || *ev.Ts < 0 {
				fail("event %d (%s): X event needs ts ≥ 0 and dur ≥ 0", i, ev.Name)
			}
			if ev.Pid == nil || ev.Tid == nil {
				fail("event %d (%s): X event needs pid and tid", i, ev.Name)
			}
			id := ev.Args["id"]
			if id == "" {
				fail("event %d (%s): X event has no args.id", i, ev.Name)
			}
			if prev, dup := nameByID[id]; dup {
				fail("event %d (%s): span id %s already used by %q", i, ev.Name, id, prev)
			}
			nameByID[id] = ev.Name
			pidByID[id] = *ev.Pid
			if p := ev.Args["parent"]; p != "" {
				parentOf[id] = p
			}
			if rp := ev.Args["remote_parent"]; rp != "" {
				remoteOf[id] = rp
			}
		case "M":
			if ev.Name != "process_name" && ev.Name != "thread_name" {
				fail("event %d: unknown metadata event %q", i, ev.Name)
			}
		case "s", "f":
			if ev.ID == "" {
				fail("event %d: flow event with no id", i)
			}
			if ev.Pid == nil {
				fail("event %d: flow event with no pid", i)
			}
			c := flows[ev.ID]
			p := flowPids[ev.ID]
			if ev.Ph == "s" {
				c[0]++
				p[0] = *ev.Pid
			} else {
				c[1]++
				p[1] = *ev.Pid
			}
			flows[ev.ID] = c
			flowPids[ev.ID] = p
		default:
			fail("event %d: unexpected phase %q", i, ev.Ph)
		}
	}

	// Referential integrity: parents resolve, flows are paired. Parent
	// links must stay inside one process — cross-process continuation is
	// remote_parent's job.
	for id, p := range parentOf {
		if _, ok := nameByID[p]; !ok {
			fail("span %s (%s): parent %s does not exist", id, nameByID[id], p)
		}
		if pidByID[p] != pidByID[id] {
			fail("span %s (%s): parent %s lives in pid %d, span in pid %d — use remote_parent",
				id, nameByID[id], p, pidByID[p], pidByID[id])
		}
	}
	for id, c := range flows {
		if c[0] != 1 || c[1] != 1 {
			fail("flow %s: %d starts and %d finishes, want 1 and 1", id, c[0], c[1])
		}
	}

	if *lifecycle {
		checkLifecycle(nameByID, parentOf)
	}
	if *cluster {
		checkCluster(nameByID, pidByID, remoteOf, flowPids)
	}
	fmt.Printf("tracecheck: ok — %d spans, %d parent links, %d flows (%d events)\n",
		spans, len(parentOf), len(flows), len(tf.TraceEvents))
}

// checkCluster enforces the merged-trace invariants: spans from at least
// two processes, every remote_parent resolving inside the file, and at
// least one flow arrow crossing a process boundary.
func checkCluster(nameByID map[string]string, pidByID map[string]int, remoteOf map[string]string, flowPids map[string][2]int) {
	pids := map[int]bool{}
	for _, pid := range pidByID {
		pids[pid] = true
	}
	if len(pids) < 2 {
		fail("cluster: spans from %d process(es), want ≥ 2", len(pids))
	}
	if len(remoteOf) == 0 {
		fail("cluster: no remote_parent links — trace context never crossed the wire")
	}
	crossRemote := 0
	for id, rp := range remoteOf {
		if _, ok := nameByID[rp]; !ok {
			fail("cluster: span %s (%s): remote_parent %s resolves to no span in the merged trace",
				id, nameByID[id], rp)
		}
		if pidByID[rp] != pidByID[id] {
			crossRemote++
		}
	}
	if crossRemote == 0 {
		fail("cluster: every remote_parent resolved within one process — no cross-process continuation")
	}
	crossFlows := 0
	for _, p := range flowPids {
		if p[0] != p[1] {
			crossFlows++
		}
	}
	if crossFlows == 0 {
		fail("cluster: no flow arrow crosses a process boundary")
	}
	fmt.Printf("tracecheck: cluster ok — %d processes, %d cross-process remote parents, %d cross-process flows\n",
		len(pids), crossRemote, crossFlows)
}

// lifecycleParents maps each lifecycle phase to its required parent span
// name, mirroring the span tree the herder emits.
var lifecycleParents = map[string]string{
	obs.SpanTxSubmit:    obs.SpanTx,
	obs.SpanTxPending:   obs.SpanTx,
	obs.SpanTxConsensus: obs.SpanTx,
	obs.SpanTxApplied:   obs.SpanTx,
	obs.SpanNomination:  obs.SpanSlot,
	obs.SpanBalloting:   obs.SpanSlot,
	obs.SpanApply:       obs.SpanSlot,
	obs.SpanPrepare:     obs.SpanBalloting,
	obs.SpanCommit:      obs.SpanBalloting,
	obs.SpanSigPrepass:  obs.SpanApply,
	obs.SpanTxApply:     obs.SpanApply,
	obs.SpanBucketMerge: obs.SpanApply,
	obs.SpanArchive:     obs.SpanApply,
}

func checkLifecycle(nameByID, parentOf map[string]string) {
	count := map[string]int{}
	for _, name := range nameByID {
		count[name]++
	}
	if count[obs.SpanTx] == 0 {
		fail("lifecycle: no %q root spans in trace", obs.SpanTx)
	}
	if count[obs.SpanSlot] == 0 {
		fail("lifecycle: no %q spans in trace", obs.SpanSlot)
	}
	for phase, wantParent := range lifecycleParents {
		if count[phase] == 0 {
			fail("lifecycle: no %q spans in trace", phase)
		}
		ok := false
		for id, name := range nameByID {
			if name != phase {
				continue
			}
			if p, linked := parentOf[id]; linked && nameByID[p] == wantParent {
				ok = true
				break
			}
		}
		if !ok {
			fail("lifecycle: no %q span is parented to a %q span", phase, wantParent)
		}
	}
	fmt.Printf("tracecheck: lifecycle ok — every phase present and parent-linked (%d tx roots, %d slots)\n",
		count[obs.SpanTx], count[obs.SpanSlot])
}
