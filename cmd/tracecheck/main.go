// Command tracecheck validates a Chrome trace-event JSON file (the
// Object Format that Perfetto and chrome://tracing load): every event
// must be well-formed, every span's parent link must resolve, and every
// flow arrow must have both endpoints. With -lifecycle it additionally
// requires the full transaction lifecycle of the paper's §6 figures —
// at least one transaction whose submit → pending → consensus → applied
// chain, and the slot/balloting/apply phase tree it links to, are all
// present and parented correctly.
//
// Usage:
//
//	tracecheck out.json
//	tracecheck -lifecycle out.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"stellar/internal/obs"
)

// event is one trace-event record; unknown fields are tolerated (the
// format is extensible) but the known ones are type-checked by decoding.
type event struct {
	Name string            `json:"name"`
	Ph   string            `json:"ph"`
	Ts   *float64          `json:"ts"`
	Dur  *float64          `json:"dur"`
	Pid  *int              `json:"pid"`
	Tid  *int              `json:"tid"`
	Cat  string            `json:"cat"`
	ID   string            `json:"id"`
	Args map[string]string `json:"args"`
}

type traceFile struct {
	TraceEvents     []event `json:"traceEvents"`
	DisplayTimeUnit string  `json:"displayTimeUnit"`
}

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "tracecheck: "+format+"\n", args...)
	os.Exit(1)
}

func main() {
	lifecycle := flag.Bool("lifecycle", false,
		"require a complete parent-linked tx lifecycle (submit through archive)")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: tracecheck [-lifecycle] trace.json")
		os.Exit(2)
	}
	raw, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fail("%v", err)
	}
	var tf traceFile
	if err := json.Unmarshal(raw, &tf); err != nil {
		fail("not valid trace JSON: %v", err)
	}

	spans := 0
	nameByID := map[string]string{} // span id → name
	parentOf := map[string]string{} // span id → parent span id
	flows := map[string][2]int{}    // flow id → {#s, #f}
	for i, ev := range tf.TraceEvents {
		switch ev.Ph {
		case "X":
			spans++
			if ev.Name == "" {
				fail("event %d: X event with no name", i)
			}
			if ev.Ts == nil || ev.Dur == nil || *ev.Dur < 0 || *ev.Ts < 0 {
				fail("event %d (%s): X event needs ts ≥ 0 and dur ≥ 0", i, ev.Name)
			}
			if ev.Pid == nil || ev.Tid == nil {
				fail("event %d (%s): X event needs pid and tid", i, ev.Name)
			}
			id := ev.Args["id"]
			if id == "" {
				fail("event %d (%s): X event has no args.id", i, ev.Name)
			}
			if prev, dup := nameByID[id]; dup {
				fail("event %d (%s): span id %s already used by %q", i, ev.Name, id, prev)
			}
			nameByID[id] = ev.Name
			if p := ev.Args["parent"]; p != "" {
				parentOf[id] = p
			}
		case "M":
			if ev.Name != "process_name" && ev.Name != "thread_name" {
				fail("event %d: unknown metadata event %q", i, ev.Name)
			}
		case "s", "f":
			if ev.ID == "" {
				fail("event %d: flow event with no id", i)
			}
			c := flows[ev.ID]
			if ev.Ph == "s" {
				c[0]++
			} else {
				c[1]++
			}
			flows[ev.ID] = c
		default:
			fail("event %d: unexpected phase %q", i, ev.Ph)
		}
	}

	// Referential integrity: parents resolve, flows are paired.
	for id, p := range parentOf {
		if _, ok := nameByID[p]; !ok {
			fail("span %s (%s): parent %s does not exist", id, nameByID[id], p)
		}
	}
	for id, c := range flows {
		if c[0] != 1 || c[1] != 1 {
			fail("flow %s: %d starts and %d finishes, want 1 and 1", id, c[0], c[1])
		}
	}

	if *lifecycle {
		checkLifecycle(nameByID, parentOf)
	}
	fmt.Printf("tracecheck: ok — %d spans, %d parent links, %d flows (%d events)\n",
		spans, len(parentOf), len(flows), len(tf.TraceEvents))
}

// lifecycleParents maps each lifecycle phase to its required parent span
// name, mirroring the span tree the herder emits.
var lifecycleParents = map[string]string{
	obs.SpanTxSubmit:    obs.SpanTx,
	obs.SpanTxPending:   obs.SpanTx,
	obs.SpanTxConsensus: obs.SpanTx,
	obs.SpanTxApplied:   obs.SpanTx,
	obs.SpanNomination:  obs.SpanSlot,
	obs.SpanBalloting:   obs.SpanSlot,
	obs.SpanApply:       obs.SpanSlot,
	obs.SpanPrepare:     obs.SpanBalloting,
	obs.SpanCommit:      obs.SpanBalloting,
	obs.SpanSigPrepass:  obs.SpanApply,
	obs.SpanTxApply:     obs.SpanApply,
	obs.SpanBucketMerge: obs.SpanApply,
	obs.SpanArchive:     obs.SpanApply,
}

func checkLifecycle(nameByID, parentOf map[string]string) {
	count := map[string]int{}
	for _, name := range nameByID {
		count[name]++
	}
	if count[obs.SpanTx] == 0 {
		fail("lifecycle: no %q root spans in trace", obs.SpanTx)
	}
	if count[obs.SpanSlot] == 0 {
		fail("lifecycle: no %q spans in trace", obs.SpanSlot)
	}
	for phase, wantParent := range lifecycleParents {
		if count[phase] == 0 {
			fail("lifecycle: no %q spans in trace", phase)
		}
		ok := false
		for id, name := range nameByID {
			if name != phase {
				continue
			}
			if p, linked := parentOf[id]; linked && nameByID[p] == wantParent {
				ok = true
				break
			}
		}
		if !ok {
			fail("lifecycle: no %q span is parented to a %q span", phase, wantParent)
		}
	}
	fmt.Printf("tracecheck: lifecycle ok — every phase present and parent-linked (%d tx roots, %d slots)\n",
		count[obs.SpanTx], count[obs.SpanSlot])
}
