// Command quorumcheck is the §6.2 misconfiguration detector as a tool: it
// reads a network's quorum configuration from JSON, checks quorum
// intersection (reporting disjoint-quorum witnesses when violated), and
// runs the criticality analysis that warns when the network is one
// misconfiguration away from divergence.
//
// Input format (see -example):
//
//	{
//	  "orgs": [
//	    {"name": "sdf", "quality": "high", "validators": ["sdf-0","sdf-1","sdf-2"]},
//	    ...
//	  ]
//	}
//
// or an explicit per-node quorum set map:
//
//	{
//	  "nodes": {
//	    "n1": {"threshold": 2, "validators": ["n1","n2","n3"]},
//	    ...
//	  }
//	}
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"stellar/internal/fba"
	"stellar/internal/qconfig"
	"stellar/internal/quorum"
)

type fileFormat struct {
	Orgs []struct {
		Name       string   `json:"name"`
		Quality    string   `json:"quality"`
		Validators []string `json:"validators"`
	} `json:"orgs"`
	Nodes map[string]jsonQSet `json:"nodes"`
}

type jsonQSet struct {
	Threshold  int        `json:"threshold"`
	Validators []string   `json:"validators"`
	InnerSets  []jsonQSet `json:"inner_sets"`
}

func (j jsonQSet) toQuorumSet() fba.QuorumSet {
	q := fba.QuorumSet{Threshold: j.Threshold}
	for _, v := range j.Validators {
		q.Validators = append(q.Validators, fba.NodeID(v))
	}
	for _, in := range j.InnerSets {
		q.InnerSets = append(q.InnerSets, in.toQuorumSet())
	}
	return q
}

const exampleConfig = `{
  "orgs": [
    {"name": "sdf",        "quality": "high", "validators": ["sdf-0", "sdf-1", "sdf-2"]},
    {"name": "satoshipay", "quality": "high", "validators": ["satoshipay-0", "satoshipay-1", "satoshipay-2"]},
    {"name": "lobstr",     "quality": "high", "validators": ["lobstr-0", "lobstr-1", "lobstr-2"]},
    {"name": "coinqvest",  "quality": "high", "validators": ["coinqvest-0", "coinqvest-1", "coinqvest-2"]},
    {"name": "keybase",    "quality": "high", "validators": ["keybase-0", "keybase-1", "keybase-2"]}
  ]
}`

func main() {
	file := flag.String("config", "", "path to quorum configuration JSON ('-' for stdin)")
	example := flag.Bool("example", false, "print an example configuration (the §7.2 tier-one orgs) and exit")
	skipCritical := flag.Bool("no-critical", false, "skip the criticality analysis")
	flag.Parse()

	if *example {
		fmt.Println(exampleConfig)
		return
	}
	var raw []byte
	var err error
	switch *file {
	case "":
		fmt.Fprintln(os.Stderr, "quorumcheck: -config required (try -example)")
		os.Exit(2)
	case "-":
		raw, err = readAll(os.Stdin)
	default:
		raw, err = os.ReadFile(*file)
	}
	if err != nil {
		fatal("read config: %v", err)
	}

	var cfg fileFormat
	if err := json.Unmarshal(raw, &cfg); err != nil {
		fatal("parse config: %v", err)
	}

	qsets := make(fba.QuorumSets)
	var orgs []quorum.Org
	switch {
	case len(cfg.Orgs) > 0:
		qc := qconfig.Config{}
		for _, o := range cfg.Orgs {
			q, err := qconfig.ParseQuality(o.Quality)
			if err != nil {
				fatal("org %s: %v", o.Name, err)
			}
			org := qconfig.Organization{Name: o.Name, Quality: q}
			for _, v := range o.Validators {
				org.Validators = append(org.Validators, fba.NodeID(v))
			}
			qc.Orgs = append(qc.Orgs, org)
		}
		qsets, err = qc.QuorumSets()
		if err != nil {
			fatal("synthesize: %v", err)
		}
		synth, _ := qc.Synthesize()
		fmt.Printf("synthesized quorum set (Figure 6 rules):\n  %s\n\n", synth.String())
		for _, o := range qc.Orgs {
			orgs = append(orgs, quorum.Org{Name: o.Name, Validators: o.Validators})
		}
	case len(cfg.Nodes) > 0:
		for id, jq := range cfg.Nodes {
			q := jq.toQuorumSet()
			if err := q.Validate(); err != nil {
				fatal("node %s: %v", id, err)
			}
			qsets[fba.NodeID(id)] = &q
		}
		orgs = quorum.GroupByPrefix(qsets)
	default:
		fatal("config has neither orgs nor nodes")
	}

	fmt.Printf("checking %d nodes...\n", len(qsets))
	start := time.Now()
	res := quorum.CheckIntersection(qsets)
	fmt.Printf("quorum intersection: %s (%v)\n", res, time.Since(start).Round(time.Millisecond))
	if !res.Intersects && res.HasQuorum {
		fmt.Printf("  witness 1: %s\n  witness 2: %s\n", res.Disjoint1, res.Disjoint2)
		os.Exit(1)
	}

	if !*skipCritical {
		start = time.Now()
		rep := quorum.CheckCriticality(qsets, orgs)
		if rep.AnyCritical() {
			fmt.Printf("CRITICAL organizations (one misconfiguration from divergence): %v (%v)\n",
				rep.Critical, time.Since(start).Round(time.Millisecond))
			os.Exit(1)
		}
		fmt.Printf("criticality: no organization is one misconfiguration from divergence (%d checks, %v)\n",
			rep.Checks, time.Since(start).Round(time.Millisecond))
	}
}

func readAll(f *os.File) ([]byte, error) { return io.ReadAll(f) }

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "quorumcheck: "+format+"\n", args...)
	os.Exit(1)
}
